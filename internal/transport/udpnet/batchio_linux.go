//go:build linux && (amd64 || arm64)

// batchio is the syscall-batched dataplane: recvmmsg drains up to
// batchK datagrams per receive syscall into pooled buffers, and sendmmsg
// pushes a whole multicast burst (or an emulated fan-out to every peer)
// with one syscall per batchK messages. This is the stage-vectorized
// shape of modern dataplanes — process vectors of packets per stage and
// count per stage — applied to the transport the paper's Section III-D
// describes, and it is what amortizes the per-datagram syscall cost that
// dominates once the hot path stops allocating.
//
// The structs below must match the kernel's struct mmsghdr layout, which
// on 64-bit targets is struct msghdr (56 bytes) + msg_len + 4 bytes of
// padding. The build tag therefore pins this file to the 64-bit ports the
// repo actually runs on; everything else (32-bit Linux included) takes the
// portable one-datagram-at-a-time fallback in batchio_fallback.go.
package udpnet

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"syscall"
	"unsafe"

	"accelring/internal/transport"
)

// batchingSupported reports whether this build can use recvmmsg/sendmmsg.
const batchingSupported = true

// batchK is the vector length per syscall: the receive loop drains up to
// batchK datagrams per recvmmsg, and senders chunk bursts into batchK
// messages per sendmmsg. 16 keeps each reader's resident pooled-buffer
// set at 1 MiB (16 × 64 KiB) while still amortizing the syscall ~16x at
// saturation.
const batchK = 16

// errAddrFamily marks a destination the sending socket's address family
// cannot encode (an IPv6 peer behind an IPv4-bound socket); the batch
// sender skips the message and reports it per-destination instead of
// aborting the burst.
var errAddrFamily = errors.New("udpnet: destination address family not supported by socket")

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit targets.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32 // msg_len: bytes transferred for this message
	_   [4]byte
}

// batchReader drains a UDP socket with recvmmsg. It permanently owns
// batchK pooled buffers; when the transport accepts a packet it detaches
// that buffer (ownership moves down the receive channel, exactly as in
// the one-at-a-time path) and the reader replaces it from the pool.
type batchReader struct {
	rc    syscall.RawConn
	pool  *transport.Pool
	bufs  [batchK][]byte
	iovs  [batchK]syscall.Iovec
	names [batchK]syscall.RawSockaddrInet6
	hdrs  [batchK]mmsghdr

	// readFn is the RawConn.Read callback, built once so the steady-state
	// receive path allocates nothing per syscall.
	readFn func(fd uintptr) bool
	n      int
	operr  syscall.Errno
}

func newBatchReader(conn *net.UDPConn, pool *transport.Pool) (*batchReader, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, fmt.Errorf("udpnet: raw receive socket: %w", err)
	}
	r := &batchReader{rc: rc, pool: pool}
	for i := range r.bufs {
		r.bufs[i] = pool.Get()
		r.iovs[i].Base = &r.bufs[i][0]
		r.iovs[i].Len = uint64(len(r.bufs[i]))
		r.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&r.names[i]))
		r.hdrs[i].hdr.Iov = &r.iovs[i]
		r.hdrs[i].hdr.Iovlen = 1
	}
	r.readFn = func(fd uintptr) bool {
		for i := range r.hdrs {
			r.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
			r.hdrs[i].n = 0
		}
		for {
			n, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&r.hdrs[0])), batchK,
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch errno {
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // let the netpoller wait for readability
			}
			r.operr = errno
			r.n = int(n)
			return true
		}
	}
	return r, nil
}

// read blocks until at least one datagram is available and returns how
// many the syscall delivered. A non-nil error is terminal for the socket
// (close/shutdown — errors.Is(err, net.ErrClosed)); socket-level errors
// the loop can survive come back as syscall errnos.
func (r *batchReader) read() (int, error) {
	r.n, r.operr = 0, 0
	if err := r.rc.Read(r.readFn); err != nil {
		return 0, err
	}
	if r.operr != 0 {
		return 0, r.operr
	}
	return r.n, nil
}

// length returns the byte count of message i from the last read.
func (r *batchReader) length(i int) int { return int(r.hdrs[i].n) }

// buffer returns the buffer holding message i, full-capacity.
func (r *batchReader) buffer(i int) []byte { return r.bufs[i] }

// addr returns the source address of message i, unmapped.
func (r *batchReader) addr(i int) netip.AddrPort {
	sa := &r.names[i]
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), portOf(&sa4.Port))
	case syscall.AF_INET6:
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), portOf(&sa.Port))
	}
	return netip.AddrPort{}
}

// detach transfers ownership of message i's buffer to the caller and
// installs a fresh pooled buffer in its slot.
func (r *batchReader) detach(i int) []byte {
	b := r.bufs[i]
	nb := r.pool.Get()
	r.bufs[i] = nb
	r.iovs[i].Base = &nb[0]
	r.iovs[i].Len = uint64(len(nb))
	return b
}

// release returns the reader's resident buffers to the pool.
func (r *batchReader) release() {
	for i := range r.bufs {
		r.pool.Put(r.bufs[i])
		r.bufs[i] = nil
	}
}

// batchWriter pushes message vectors through sendmmsg. One writer serves
// one socket; calls must be serialized by the owner (udpnet guards it
// with the transport's send path, which the Transport contract already
// declares single-sender).
type batchWriter struct {
	rc     syscall.RawConn
	family uint16 // socket address family, for encoding destinations
	iovs   [batchK]syscall.Iovec
	names  [batchK]syscall.RawSockaddrInet6
	hdrs   [batchK]mmsghdr
	slot   [batchK]int // hdr slot → caller's message index

	// onSyscall, when set, is invoked once per sendmmsg syscall with the
	// number of messages it transmitted (0 for a syscall that failed with
	// an errno) — the feed for the SendSyscalls counter and the send
	// batch-size histogram.
	onSyscall func(sent int)

	writeFn  func(fd uintptr) bool
	off, cnt int
	sent     int
	operr    syscall.Errno
}

// newBatchWriter wraps a send socket. connected sockets (DialUDP) take
// nil destination vectors; unconnected ones need one address per packet.
func newBatchWriter(conn *net.UDPConn) (*batchWriter, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, fmt.Errorf("udpnet: raw send socket: %w", err)
	}
	w := &batchWriter{rc: rc, family: syscall.AF_INET6}
	if la, ok := conn.LocalAddr().(*net.UDPAddr); ok && la.IP.To4() != nil {
		w.family = syscall.AF_INET
	}
	for i := range w.hdrs {
		w.hdrs[i].hdr.Iov = &w.iovs[i]
		w.hdrs[i].hdr.Iovlen = 1
	}
	w.writeFn = func(fd uintptr) bool {
		for {
			n, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&w.hdrs[w.off])), uintptr(w.cnt-w.off),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch errno {
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // wait for writability
			}
			w.operr = errno
			w.sent = int(n)
			return true
		}
	}
	return w, nil
}

// send transmits pkts (to addrs[i] each, or to the connected destination
// when addrs is nil) in chunks of batchK, surviving partial sends. A
// failed message is reported through onErr with its index and skipped —
// the rest of the burst still goes out, the batched analogue of the
// fan-out completing past one bad peer. The returned error is terminal
// only (socket closed mid-call).
func (w *batchWriter) send(pkts [][]byte, addrs []netip.AddrPort, onErr func(i int, err error)) error {
	next := 0
	for next < len(pkts) {
		// Load up to batchK messages, skipping unencodable destinations.
		cnt := 0
		for ; next < len(pkts) && cnt < batchK; next++ {
			pkt := pkts[next]
			if len(pkt) == 0 {
				continue
			}
			if addrs != nil {
				size := putSockaddr(&w.names[cnt], addrs[next], w.family)
				if size == 0 {
					if onErr != nil {
						onErr(next, errAddrFamily)
					}
					continue
				}
				w.hdrs[cnt].hdr.Name = (*byte)(unsafe.Pointer(&w.names[cnt]))
				w.hdrs[cnt].hdr.Namelen = size
			} else {
				w.hdrs[cnt].hdr.Name = nil
				w.hdrs[cnt].hdr.Namelen = 0
			}
			w.iovs[cnt].Base = &pkt[0]
			w.iovs[cnt].Len = uint64(len(pkt))
			w.hdrs[cnt].n = 0
			w.slot[cnt] = next
			cnt++
		}
		// Transmit the chunk, resuming after partial sends and skipping
		// past per-message failures.
		off := 0
		for off < cnt {
			w.off, w.cnt = off, cnt
			w.operr, w.sent = 0, 0
			if err := w.rc.Write(w.writeFn); err != nil {
				return err
			}
			if w.operr != 0 {
				if w.onSyscall != nil {
					w.onSyscall(0)
				}
				if onErr != nil {
					onErr(w.slot[off], w.operr)
				}
				off++
				continue
			}
			if w.sent <= 0 {
				// Defensive: a zero-progress success would spin forever.
				if onErr != nil {
					onErr(w.slot[off], syscall.EIO)
				}
				off++
				continue
			}
			if w.onSyscall != nil {
				w.onSyscall(w.sent)
			}
			off += w.sent
		}
	}
	return nil
}

// portOf reads a network-byte-order sockaddr port.
func portOf(p *uint16) uint16 {
	b := (*[2]byte)(unsafe.Pointer(p))
	return uint16(b[0])<<8 | uint16(b[1])
}

// putSockaddr encodes ap into dst for a socket of the given family and
// returns the sockaddr length, or 0 if the family cannot carry ap (an
// IPv6 destination on an IPv4 socket). IPv4 destinations on an IPv6
// socket use the v4-mapped form, matching what the kernel does for
// dual-stack sockets.
func putSockaddr(dst *syscall.RawSockaddrInet6, ap netip.AddrPort, family uint16) uint32 {
	if family == syscall.AF_INET {
		a := ap.Addr().Unmap()
		if !a.Is4() {
			return 0
		}
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(dst))
		sa4.Family = syscall.AF_INET
		sa4.Addr = a.As4()
		b := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		b[0], b[1] = byte(ap.Port()>>8), byte(ap.Port())
		return syscall.SizeofSockaddrInet4
	}
	dst.Family = syscall.AF_INET6
	dst.Addr = ap.Addr().As16() // As16 yields the v4-mapped form for IPv4
	dst.Flowinfo = 0
	dst.Scope_id = 0
	b := (*[2]byte)(unsafe.Pointer(&dst.Port))
	b[0], b[1] = byte(ap.Port()>>8), byte(ap.Port())
	return syscall.SizeofSockaddrInet6
}
