//go:build linux && amd64

package udpnet

// Raw syscall numbers for linux/amd64. The stdlib syscall package's number
// table was frozen before sendmmsg (3.0 kernel, nr 307) landed, so both are
// spelled out here; recvmmsg matches syscall.SYS_RECVMMSG.
const (
	sysRECVMMSG uintptr = 299
	sysSENDMMSG uintptr = 307
)
