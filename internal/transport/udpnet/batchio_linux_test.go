//go:build linux && (amd64 || arm64)

package udpnet

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"accelring/internal/transport"
)

func localConn(t *testing.T) *net.UDPConn {
	t.Helper()
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func addrPortOf(c *net.UDPConn) netip.AddrPort {
	return unmapAddrPort(c.LocalAddr().(*net.UDPAddr).AddrPort())
}

// TestBatchReaderDrainsQueuedDatagrams queues a pile of datagrams in the
// kernel socket buffer before the first read, so one recvmmsg must return
// several of them — the amortization the layer exists for — with correct
// lengths, payloads, and source addresses.
func TestBatchReaderDrainsQueuedDatagrams(t *testing.T) {
	recv := localConn(t)
	send := localConn(t)
	const count = 10
	want := map[string]bool{}
	for i := 0; i < count; i++ {
		msg := fmt.Sprintf("queued-%02d", i)
		want[msg] = true
		if _, err := send.WriteToUDPAddrPort([]byte(msg), addrPortOf(recv)); err != nil {
			t.Fatal(err)
		}
	}
	// Let every datagram land in recv's kernel buffer before the first read.
	time.Sleep(200 * time.Millisecond)

	r, err := newBatchReader(recv, transport.Buffers)
	if err != nil {
		t.Fatal(err)
	}
	defer r.release()

	total, maxBatch := 0, 0
	for total < count {
		n, err := r.read()
		if err != nil {
			t.Fatalf("read after %d datagrams: %v", total, err)
		}
		if n > maxBatch {
			maxBatch = n
		}
		for i := 0; i < n; i++ {
			got := string(r.buffer(i)[:r.length(i)])
			if !want[got] {
				t.Fatalf("unexpected or duplicate datagram %q", got)
			}
			delete(want, got)
			if src := r.addr(i); src != addrPortOf(send) {
				t.Fatalf("datagram %q source = %v, want %v", got, src, addrPortOf(send))
			}
		}
		total += n
	}
	if maxBatch < 2 {
		t.Fatalf("largest recvmmsg batch = %d for %d queued datagrams, want >= 2", maxBatch, count)
	}
}

// TestBatchReaderDetach: detaching a message's buffer transfers ownership
// and installs a fresh buffer in the slot, so the next read cannot
// overwrite the detached packet.
func TestBatchReaderDetach(t *testing.T) {
	recv := localConn(t)
	send := localConn(t)
	r, err := newBatchReader(recv, transport.Buffers)
	if err != nil {
		t.Fatal(err)
	}
	defer r.release()

	if _, err := send.WriteToUDPAddrPort([]byte("keep-me"), addrPortOf(recv)); err != nil {
		t.Fatal(err)
	}
	recv.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := r.read()
	if err != nil || n != 1 {
		t.Fatalf("read = %d, %v", n, err)
	}
	kept := r.detach(0)[:r.length(0)]
	if &r.buffer(0)[0] == &kept[0] {
		t.Fatal("detach left the same buffer in the slot")
	}
	if _, err := send.WriteToUDPAddrPort([]byte("overwriter"), addrPortOf(recv)); err != nil {
		t.Fatal(err)
	}
	if n, err := r.read(); err != nil || n != 1 {
		t.Fatalf("second read = %d, %v", n, err)
	}
	if string(kept) != "keep-me" {
		t.Fatalf("detached packet corrupted by later read: %q", kept)
	}
	transport.Buffers.Put(kept)
}

// TestBatchReaderClosedSocket: closing the socket makes read return a
// terminal error satisfying errors.Is(err, net.ErrClosed).
func TestBatchReaderClosedSocket(t *testing.T) {
	recv := localConn(t)
	r, err := newBatchReader(recv, transport.Buffers)
	if err != nil {
		t.Fatal(err)
	}
	defer r.release()
	go func() {
		time.Sleep(50 * time.Millisecond)
		recv.Close()
	}()
	_, err = r.read()
	if !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read on closed socket = %v, want net.ErrClosed", err)
	}
}

// collectDatagrams reads n datagrams off c, failing the test on timeout.
func collectDatagrams(t *testing.T, c *net.UDPConn, n int) map[string]int {
	t.Helper()
	got := map[string]int{}
	buf := make([]byte, 2048)
	c.SetReadDeadline(time.Now().Add(3 * time.Second))
	for i := 0; i < n; i++ {
		ln, _, err := c.ReadFromUDPAddrPort(buf)
		if err != nil {
			t.Fatalf("after %d datagrams: %v", i, err)
		}
		got[string(buf[:ln])]++
	}
	return got
}

// TestBatchWriterUnconnectedVector sends a burst larger than batchK
// through an unconnected socket with per-message destinations and checks
// delivery, syscall amortization, and the onSyscall accounting feed.
func TestBatchWriterUnconnectedVector(t *testing.T) {
	recv := localConn(t)
	send := localConn(t)
	w, err := newBatchWriter(send)
	if err != nil {
		t.Fatal(err)
	}
	var sysCalls, sysSent int
	w.onSyscall = func(sent int) { sysCalls++; sysSent += sent }

	const count = batchK + 4
	pkts := make([][]byte, count)
	addrs := make([]netip.AddrPort, count)
	for i := range pkts {
		pkts[i] = []byte(fmt.Sprintf("vec-%02d", i))
		addrs[i] = addrPortOf(recv)
	}
	if err := w.send(pkts, addrs, func(i int, e error) { t.Errorf("message %d failed: %v", i, e) }); err != nil {
		t.Fatal(err)
	}
	if sysSent != count {
		t.Fatalf("onSyscall reported %d messages sent, want %d", sysSent, count)
	}
	if sysCalls >= count {
		t.Fatalf("%d syscalls for %d messages: no amortization", sysCalls, count)
	}
	got := collectDatagrams(t, recv, count)
	for i := range pkts {
		if got[string(pkts[i])] != 1 {
			t.Fatalf("packet %q delivered %d times", pkts[i], got[string(pkts[i])])
		}
	}
}

// TestBatchWriterConnected: a connected (dialed) socket takes a nil
// destination vector.
func TestBatchWriterConnected(t *testing.T) {
	recv := localConn(t)
	send, err := net.DialUDP("udp", nil, recv.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	w, err := newBatchWriter(send)
	if err != nil {
		t.Fatal(err)
	}
	pkts := [][]byte{[]byte("c1"), []byte("c2"), []byte("c3"), []byte("c4"), []byte("c5")}
	if err := w.send(pkts, nil, func(i int, e error) { t.Errorf("message %d failed: %v", i, e) }); err != nil {
		t.Fatal(err)
	}
	got := collectDatagrams(t, recv, len(pkts))
	if len(got) != len(pkts) {
		t.Fatalf("received %v", got)
	}
}

// TestBatchWriterFamilyMismatch: a destination the socket's family cannot
// encode is reported through onErr with errAddrFamily and skipped; the
// rest of the burst is still delivered.
func TestBatchWriterFamilyMismatch(t *testing.T) {
	recv := localConn(t)
	send := localConn(t) // IPv4-bound: cannot encode IPv6 destinations
	w, err := newBatchWriter(send)
	if err != nil {
		t.Fatal(err)
	}
	pkts := [][]byte{[]byte("ok-1"), []byte("bad"), []byte("ok-2")}
	addrs := []netip.AddrPort{
		addrPortOf(recv),
		netip.MustParseAddrPort("[::1]:19999"),
		addrPortOf(recv),
	}
	var failedIdx []int
	err = w.send(pkts, addrs, func(i int, e error) {
		failedIdx = append(failedIdx, i)
		if !errors.Is(e, errAddrFamily) {
			t.Errorf("message %d error = %v, want errAddrFamily", i, e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(failedIdx) != 1 || failedIdx[0] != 1 {
		t.Fatalf("failed indices = %v, want [1]", failedIdx)
	}
	got := collectDatagrams(t, recv, 2)
	if got["ok-1"] != 1 || got["ok-2"] != 1 {
		t.Fatalf("received %v, want ok-1 and ok-2", got)
	}
}
