package transport

import (
	"sync"

	"accelring/internal/metrics"
)

// MaxPacket is the size of every pooled receive buffer. It matches the
// largest datagram the wire format can produce (a full-size data message),
// so any packet either transport receives fits in one pooled buffer.
const MaxPacket = 64 * 1024

// Pool recycles packet buffers between the transports' receive goroutines
// and the runtime loop, keeping the steady-state receive path free of
// per-packet allocation and the GC pressure that comes with it (the paper's
// throughput results assume token handling stays off the allocator-heavy
// slow path).
//
// Ownership contract: a buffer obtained with Get is owned by the caller
// until handed off. The built-in transports Get a buffer per received
// packet and send it on their Data()/Token() channels — that send TRANSFERS
// ownership to the consumer, which must call Put exactly once when done
// (the runtime loop does this after dispatching the packet to the engine).
// After Put the buffer must not be touched; any slice still aliasing it
// (e.g. a zero-copy DecodeDataInto payload) is invalidated.
//
// Internally the pool is a sync.Pool of fixed-size arrays. sync.Pool's
// per-P caches matter here, not just its GC integration: the pool is
// shared process-wide, and a central freelist would routinely hand a
// goroutine a buffer last written by a different core, turning every
// packet copy into a cross-core cache-line migration on the protocol's
// critical path (measurably slower end-to-end than allocating). Storing
// *[MaxPacket]byte instead of []byte keeps Put allocation-free: a pointer
// fits in an interface word, where boxing a slice header would allocate.
type Pool struct {
	pool sync.Pool // stores *[MaxPacket]byte

	hits     metrics.Counter // Get served from the pool
	misses   metrics.Counter // Get had to allocate
	puts     metrics.Counter // buffers returned
	discards metrics.Counter // returned buffers rejected (wrong capacity)
}

// NewPool creates an empty pool. Buffers are created lazily: an empty pool
// allocates on Get and recycles from then on.
func NewPool() *Pool { return &Pool{} }

// Buffers is the process-wide packet buffer pool shared by the built-in
// transports and the runtime loop. Sharing one pool lets a node with both
// an active receive path and an active send path keep the working set
// small, and gives observability one place to read hit/miss counters from.
var Buffers = NewPool()

// Size returns the capacity of every buffer the pool hands out.
func (p *Pool) Size() int { return MaxPacket }

// Get returns a full-length buffer (len == cap == Size()). The caller owns
// it until it is handed off or Put back.
func (p *Pool) Get() []byte {
	if b, _ := p.pool.Get().(*[MaxPacket]byte); b != nil {
		p.hits.Inc()
		return b[:]
	}
	p.misses.Inc()
	return make([]byte, MaxPacket)
}

// Put returns a buffer to the pool. pkt may be a sub-slice of a pooled
// buffer (the usual case: the transport delivered buf[:n]); Put recovers
// the full capacity. Buffers that did not come from this pool — anything
// with capacity below Size() — are counted as discards and dropped, so
// callers that received a packet from an unpooled source may still Put it
// unconditionally. A nil pkt is ignored.
func (p *Pool) Put(pkt []byte) {
	if pkt == nil {
		return
	}
	if cap(pkt) < MaxPacket {
		p.discards.Inc()
		return
	}
	p.puts.Inc()
	p.pool.Put((*[MaxPacket]byte)(pkt[:MaxPacket]))
}

// GetBatch appends n freshly obtained buffers to dst and returns the
// extended slice. It is the vectorized Get for batched syscall paths: the
// caller keeps one [][]byte scratch header and refills it per burst, so
// the steady state allocates neither buffers (pool hits) nor the vector
// (header capacity is retained across calls via dst[:0]).
func (p *Pool) GetBatch(dst [][]byte, n int) [][]byte {
	for i := 0; i < n; i++ {
		dst = append(dst, p.Get())
	}
	return dst
}

// PutBatch returns every buffer in pkts to the pool and nils the entries,
// so a retained scratch vector cannot alias recycled buffers (a stale
// alias Put a second time is the classic double-put). Entries follow the
// same rules as Put: sub-slices recover full capacity, nil and foreign
// buffers are tolerated.
func (p *Pool) PutBatch(pkts [][]byte) {
	for i, b := range pkts {
		p.Put(b)
		pkts[i] = nil
	}
}

// PoolSnapshot is a point-in-time copy of a pool's counters. Hits and
// Misses partition Get calls; Puts counts buffers accepted back and
// Discards counts returns rejected for wrong capacity.
type PoolSnapshot struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Puts     uint64 `json:"puts"`
	Discards uint64 `json:"discards"`
}

// Snapshot copies the pool's counters.
func (p *Pool) Snapshot() PoolSnapshot {
	return PoolSnapshot{
		Hits:     p.hits.Load(),
		Misses:   p.misses.Load(),
		Puts:     p.puts.Load(),
		Discards: p.discards.Load(),
	}
}
