// Package memnet is an in-memory transport for tests and in-process
// clusters: a hub connects participant endpoints, replicating multicasts
// and routing unicasts over buffered channels, with a configurable per-hop
// latency and optional fault injection (packet loss and network
// partitions).
//
// The latency matters beyond realism: a token ring with zero network
// latency spins at memory speed, wasting CPU on millions of idle token
// rotations per second. The default 100µs per hop matches a fast LAN.
package memnet

import (
	"math/rand"
	"sync"
	"time"

	"accelring/internal/transport"
	"accelring/internal/wire"
)

// defaultQueue is the per-endpoint receive channel depth. A full queue
// drops packets, like a full kernel socket buffer.
const defaultQueue = 4096

// DefaultLatency is the per-hop delivery latency if none is configured.
const DefaultLatency = 100 * time.Microsecond

// Hub is an in-memory network connecting endpoints. The zero value is not
// usable; create with NewHub.
type Hub struct {
	latency time.Duration

	mu        sync.RWMutex
	endpoints map[wire.ParticipantID]*Endpoint
	partition map[wire.ParticipantID]int
	lossRate  float64

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewHub creates an empty hub with the default per-hop latency. seed
// drives the loss generator, making fault-injecting tests reproducible.
func NewHub(seed int64) *Hub {
	return &Hub{
		latency:   DefaultLatency,
		endpoints: make(map[wire.ParticipantID]*Endpoint),
		partition: make(map[wire.ParticipantID]int),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// SetLatency changes the per-hop delivery latency for endpoints joined
// afterwards. Zero means deliver immediately (token rotations then spin as
// fast as the CPU allows — only sensible in fully virtual-time tests).
func (h *Hub) SetLatency(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.latency = d
}

// SetLossRate makes the hub drop each delivered packet independently with
// probability p (0 ≤ p < 1). Token packets are subject to loss as well.
func (h *Hub) SetLossRate(p float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lossRate = p
}

// SetPartition assigns a participant to a partition group; traffic only
// flows between participants in the same group. All participants start in
// group 0.
func (h *Hub) SetPartition(id wire.ParticipantID, group int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.partition[id] = group
}

// Heal reconnects all partitions.
func (h *Hub) Heal() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.partition = make(map[wire.ParticipantID]int)
}

// Join creates and registers an endpoint for a participant. Joining an ID
// twice replaces the previous endpoint.
func (h *Hub) Join(id wire.ParticipantID) *Endpoint {
	h.mu.Lock()
	latency := h.latency
	h.mu.Unlock()

	ep := &Endpoint{
		hub:     h,
		id:      id,
		latency: latency,
		dataIn:  make(chan timedPkt, defaultQueue),
		tokenIn: make(chan timedPkt, defaultQueue),
		data:    make(chan []byte, defaultQueue),
		token:   make(chan []byte, defaultQueue),
	}
	ep.wg.Add(2)
	go ep.pump(ep.dataIn, ep.data)
	go ep.pump(ep.tokenIn, ep.token)

	h.mu.Lock()
	defer h.mu.Unlock()
	h.endpoints[id] = ep
	return ep
}

// remove unregisters an endpoint (called by Endpoint.Close).
func (h *Hub) remove(ep *Endpoint) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.endpoints[ep.id] == ep {
		delete(h.endpoints, ep.id)
	}
}

// drop decides whether to lose a packet.
func (h *Hub) drop(lossRate float64) bool {
	if lossRate <= 0 {
		return false
	}
	h.rngMu.Lock()
	defer h.rngMu.Unlock()
	return h.rng.Float64() < lossRate
}

// timedPkt is a packet scheduled for delivery at a due time.
type timedPkt struct {
	due time.Time
	pkt []byte
}

// Endpoint is one participant's attachment to the hub.
type Endpoint struct {
	hub     *Hub
	id      wire.ParticipantID
	latency time.Duration

	dataIn  chan timedPkt
	tokenIn chan timedPkt
	data    chan []byte
	token   chan []byte

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

var _ transport.Transport = (*Endpoint)(nil)

// ID returns the participant this endpoint belongs to.
func (ep *Endpoint) ID() wire.ParticipantID { return ep.id }

// pump delays packets by the hub latency, preserving FIFO order (all
// packets carry the same delay).
func (ep *Endpoint) pump(in chan timedPkt, out chan []byte) {
	defer ep.wg.Done()
	defer close(out)
	for tp := range in {
		if d := time.Until(tp.due); d > 0 {
			time.Sleep(d)
		}
		select {
		case out <- tp.pkt:
		default:
			// Receiver queue full: drop, as a kernel buffer would.
		}
	}
}

// Multicast implements transport.Transport.
func (ep *Endpoint) Multicast(pkt []byte) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return transport.ErrClosed
	}
	ep.mu.Unlock()

	h := ep.hub
	h.mu.RLock()
	loss := h.lossRate
	myGroup := h.partition[ep.id]
	targets := make([]*Endpoint, 0, len(h.endpoints))
	for id, other := range h.endpoints {
		if id == ep.id || h.partition[id] != myGroup {
			continue
		}
		targets = append(targets, other)
	}
	h.mu.RUnlock()

	for _, other := range targets {
		if h.drop(loss) {
			continue
		}
		other.deliver(other.dataIn, pkt)
	}
	return nil
}

// Unicast implements transport.Transport.
func (ep *Endpoint) Unicast(to wire.ParticipantID, pkt []byte) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return transport.ErrClosed
	}
	ep.mu.Unlock()

	h := ep.hub
	h.mu.RLock()
	loss := h.lossRate
	target := h.endpoints[to]
	connected := target != nil && h.partition[to] == h.partition[ep.id]
	h.mu.RUnlock()

	if target == nil {
		return transport.ErrUnknownPeer
	}
	if !connected && to != ep.id {
		return nil // silently partitioned, like a real network
	}
	if h.drop(loss) {
		return nil
	}
	target.deliver(target.tokenIn, pkt)
	return nil
}

// deliver copies the packet into a delay queue, dropping on overflow.
func (ep *Endpoint) deliver(ch chan timedPkt, pkt []byte) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	cp := make([]byte, len(pkt))
	copy(cp, pkt)
	select {
	case ch <- timedPkt{due: time.Now().Add(ep.latency), pkt: cp}:
	default:
		// Queue full: drop, as a kernel socket buffer would.
	}
}

// Data implements transport.Transport.
func (ep *Endpoint) Data() <-chan []byte { return ep.data }

// Token implements transport.Transport.
func (ep *Endpoint) Token() <-chan []byte { return ep.token }

// Close implements transport.Transport.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	ep.mu.Unlock()
	ep.hub.remove(ep)
	close(ep.dataIn)
	close(ep.tokenIn)
	ep.wg.Wait()
	return nil
}
