// Package memnet is an in-memory transport for tests and in-process
// clusters: a hub connects participant endpoints, replicating multicasts
// and routing unicasts over buffered channels, with a configurable per-hop
// latency and optional fault injection (packet loss, duplication,
// reordering delay, network partitions, and declarative faultplan
// programs).
//
// Every probabilistic fault decision is drawn from the hub's single seeded
// generator, serialized under one lock and — for multicast — applied to
// destinations in ascending participant order, so a fixed packet sequence
// from one goroutine hits the identical fault sequence on every run with
// the same seed.
//
// The latency matters beyond realism: a token ring with zero network
// latency spins at memory speed, wasting CPU on millions of idle token
// rotations per second. The default 100µs per hop matches a fast LAN.
package memnet

import (
	"container/heap"
	"math/rand"
	"sort"
	"sync"
	"time"

	"accelring/internal/faultplan"
	"accelring/internal/transport"
	"accelring/internal/wire"
)

// defaultQueue is the per-endpoint receive channel depth. A full queue
// drops packets, like a full kernel socket buffer.
const defaultQueue = 4096

// DefaultLatency is the per-hop delivery latency if none is configured.
const DefaultLatency = 100 * time.Microsecond

// Hub is an in-memory network connecting endpoints. The zero value is not
// usable; create with NewHub.
type Hub struct {
	latency time.Duration

	mu           sync.RWMutex
	endpoints    map[wire.ParticipantID]*Endpoint
	partition    map[wire.ParticipantID]int
	lossRate     float64
	dupRate      float64
	reorderProb  float64
	reorderExtra time.Duration
	fault        *faultplan.Injector
	faultEpoch   time.Time
	healTimer    *time.Timer

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewHub creates an empty hub with the default per-hop latency. seed
// drives the loss generator, making fault-injecting tests reproducible.
func NewHub(seed int64) *Hub {
	return &Hub{
		latency:   DefaultLatency,
		endpoints: make(map[wire.ParticipantID]*Endpoint),
		partition: make(map[wire.ParticipantID]int),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// SetLatency changes the per-hop delivery latency for endpoints joined
// afterwards. Zero means deliver immediately (token rotations then spin as
// fast as the CPU allows — only sensible in fully virtual-time tests).
func (h *Hub) SetLatency(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.latency = d
}

// SetLossRate makes the hub drop each delivered packet independently with
// probability p (0 ≤ p < 1). Token packets are subject to loss as well.
func (h *Hub) SetLossRate(p float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lossRate = p
}

// SetDupRate makes the hub deliver each packet twice independently with
// probability p (0 ≤ p < 1). Duplicates exercise the protocol's duplicate
// suppression.
func (h *Hub) SetDupRate(p float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dupRate = p
}

// SetReorder makes the hub delay each packet independently with
// probability p by an extra duration, letting later packets overtake it —
// the UDP reordering the real networks exhibit under load.
func (h *Hub) SetReorder(p float64, extra time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.reorderProb = p
	h.reorderExtra = extra
}

// SetPartition assigns a participant to a partition group; traffic only
// flows between participants in the same group. All participants start in
// group 0.
func (h *Hub) SetPartition(id wire.ParticipantID, group int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.partition[id] = group
}

// Heal reconnects all partitions.
func (h *Hub) Heal() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.partition = make(map[wire.ParticipantID]int)
}

// ScheduleHeal arranges for Heal to run after the given duration,
// replacing any previously scheduled heal. It lets a test script a
// partition window without running its own timer goroutine.
func (h *Hub) ScheduleHeal(after time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.healTimer != nil {
		h.healTimer.Stop()
	}
	h.healTimer = time.AfterFunc(after, h.Heal)
}

// ApplyFaults evaluates a declarative fault plan on every subsequent
// packet, in addition to the hub's own loss/dup/reorder rates. Plan time
// zero is the moment of this call. Partition and heal events inside the
// plan are honored by the plan's injector; crash and restart events are
// ignored (the hub cannot stop a process — that is the caller's job). A
// nil plan clears fault-plan evaluation.
func (h *Hub) ApplyFaults(plan *faultplan.Plan) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if plan == nil {
		h.fault = nil
		return
	}
	h.fault = plan.Injector()
	h.faultEpoch = time.Now()
}

// Join creates and registers an endpoint for a participant. Joining an ID
// twice replaces the previous endpoint.
func (h *Hub) Join(id wire.ParticipantID) *Endpoint {
	h.mu.Lock()
	latency := h.latency
	h.mu.Unlock()

	ep := &Endpoint{
		hub:     h,
		id:      id,
		latency: latency,
		dataIn:  make(chan timedPkt, defaultQueue),
		tokenIn: make(chan timedPkt, defaultQueue),
		data:    make(chan []byte, defaultQueue),
		token:   make(chan []byte, defaultQueue),
	}
	ep.wg.Add(2)
	go ep.pump(ep.dataIn, ep.data)
	go ep.pump(ep.tokenIn, ep.token)

	h.mu.Lock()
	defer h.mu.Unlock()
	h.endpoints[id] = ep
	return ep
}

// remove unregisters an endpoint (called by Endpoint.Close).
func (h *Hub) remove(ep *Endpoint) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.endpoints[ep.id] == ep {
		delete(h.endpoints, ep.id)
	}
}

// verdict is the hub's combined fault decision for one packet copy.
type verdict struct {
	drop  bool
	dup   bool
	delay time.Duration
}

// pktKind extracts the wire message kind from a packet's four-byte header
// ("AR", version, kind); malformed packets report kind 0, which fault
// plans with a zero kind mask still match.
func pktKind(pkt []byte) wire.Kind {
	if len(pkt) >= 4 && pkt[0] == 'A' && pkt[1] == 'R' {
		return wire.Kind(pkt[3])
	}
	return 0
}

// decide draws the fault verdict for one packet copy from from to to. All
// probabilistic draws — the hub's own rates and the fault plan's link
// streams — happen under one lock, in a fixed order, so a deterministic
// packet sequence receives a deterministic fault sequence.
func (h *Hub) decide(from, to wire.ParticipantID, kind wire.Kind) verdict {
	h.mu.RLock()
	loss, dup := h.lossRate, h.dupRate
	rp, rd := h.reorderProb, h.reorderExtra
	fault, epoch := h.fault, h.faultEpoch
	h.mu.RUnlock()

	var v verdict
	if loss <= 0 && dup <= 0 && rp <= 0 && fault == nil {
		return v
	}
	h.rngMu.Lock()
	defer h.rngMu.Unlock()
	if loss > 0 && h.rng.Float64() < loss {
		v.drop = true
	}
	if dup > 0 && h.rng.Float64() < dup {
		v.dup = true
	}
	if rp > 0 && h.rng.Float64() < rp {
		v.delay += rd
	}
	if fault != nil {
		fv := fault.Decide(time.Since(epoch), from, to, kind)
		v.drop = v.drop || fv.Drop
		v.dup = v.dup || fv.Dup
		v.delay += fv.Delay
	}
	if v.drop {
		return verdict{drop: true}
	}
	return v
}

// timedPkt is a packet scheduled for delivery at a due time. seq breaks
// due-time ties in arrival order, keeping undelayed traffic FIFO.
type timedPkt struct {
	due time.Time
	seq uint64
	pkt []byte
}

// pktHeap orders pending packets by due time, then arrival.
type pktHeap []timedPkt

func (q pktHeap) Len() int { return len(q) }
func (q pktHeap) Less(i, j int) bool {
	if !q[i].due.Equal(q[j].due) {
		return q[i].due.Before(q[j].due)
	}
	return q[i].seq < q[j].seq
}
func (q pktHeap) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pktHeap) Push(x any)   { *q = append(*q, x.(timedPkt)) }
func (q *pktHeap) Pop() any {
	old := *q
	n := len(old)
	tp := old[n-1]
	old[n-1].pkt = nil
	*q = old[:n-1]
	return tp
}

// Endpoint is one participant's attachment to the hub.
type Endpoint struct {
	transport.Metrics

	hub     *Hub
	id      wire.ParticipantID
	latency time.Duration

	dataIn  chan timedPkt
	tokenIn chan timedPkt
	data    chan []byte
	token   chan []byte

	mu     sync.Mutex
	closed bool
	seq    uint64 // arrival stamp for due-time tiebreaks, under mu
	wg     sync.WaitGroup
}

var _ transport.Transport = (*Endpoint)(nil)

// ID returns the participant this endpoint belongs to.
func (ep *Endpoint) ID() wire.ParticipantID { return ep.id }

// pump delays packets until their due time, delivering in due order: a
// packet carrying an extra reordering delay is overtaken by later traffic
// with an earlier due time. Equal due times deliver in arrival order, so
// without reordering faults the pump is FIFO.
func (ep *Endpoint) pump(in chan timedPkt, out chan []byte) {
	defer ep.wg.Done()
	defer close(out)
	var q pktHeap
	emit := func() {
		tp := heap.Pop(&q).(timedPkt)
		select {
		case out <- tp.pkt:
			// Ownership of the pooled buffer transfers to the consumer,
			// which returns it with transport.Buffers.Put.
			ep.In.Inc()
		default:
			// Receiver queue full: drop, as a kernel buffer would — but
			// accounted, never silent — and recycle the buffer.
			ep.Drops.Inc()
			transport.Buffers.Put(tp.pkt)
		}
	}
	for {
		if len(q) == 0 {
			tp, ok := <-in
			if !ok {
				return
			}
			heap.Push(&q, tp)
			continue
		}
		d := time.Until(q[0].due)
		if d <= 0 {
			emit()
			continue
		}
		timer := time.NewTimer(d)
		select {
		case tp, ok := <-in:
			timer.Stop()
			if !ok {
				// Closing flushes the backlog in due order without
				// waiting out the remaining delays.
				for len(q) > 0 {
					emit()
				}
				return
			}
			heap.Push(&q, tp)
		case <-timer.C:
			emit()
		}
	}
}

// Multicast implements transport.Transport.
func (ep *Endpoint) Multicast(pkt []byte) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return transport.ErrClosed
	}
	ep.mu.Unlock()

	h := ep.hub
	h.mu.RLock()
	myGroup := h.partition[ep.id]
	targets := make([]*Endpoint, 0, len(h.endpoints))
	for id, other := range h.endpoints {
		if id == ep.id || h.partition[id] != myGroup {
			continue
		}
		targets = append(targets, other)
	}
	h.mu.RUnlock()
	// Iterate destinations in ascending ID order so the fault generator's
	// draw sequence does not depend on map iteration order.
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })

	kind := pktKind(pkt)
	for _, other := range targets {
		v := h.decide(ep.id, other.id, kind)
		if v.drop {
			continue
		}
		ep.Out.Inc()
		ep.Fanout.Inc()
		other.deliver(other.dataIn, pkt, v.delay)
		if v.dup {
			other.deliver(other.dataIn, pkt, v.delay)
		}
	}
	return nil
}

// Unicast implements transport.Transport.
func (ep *Endpoint) Unicast(to wire.ParticipantID, pkt []byte) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return transport.ErrClosed
	}
	ep.mu.Unlock()

	h := ep.hub
	h.mu.RLock()
	target := h.endpoints[to]
	connected := target != nil && h.partition[to] == h.partition[ep.id]
	h.mu.RUnlock()

	if target == nil {
		return transport.ErrUnknownPeer
	}
	if !connected && to != ep.id {
		return nil // silently partitioned, like a real network
	}
	v := h.decide(ep.id, to, pktKind(pkt))
	if v.drop {
		return nil
	}
	ep.Out.Inc()
	target.deliver(target.tokenIn, pkt, v.delay)
	if v.dup {
		target.deliver(target.tokenIn, pkt, v.delay)
	}
	return nil
}

// pooledCopyMax bounds which deliveries copy into pooled buffers. Small
// packets — tokens, joins, small commits — touch a handful of cache lines,
// so recycling them through the process-wide pool is free and removes one
// allocation per token hop. Large data packets are the opposite: the copy
// happens on the sender's goroutine, and writing ~1.4KB into a recycled
// buffer whose cache lines were last owned by another node's core costs
// measurably more end-to-end than a fresh, core-local allocation. (A real
// NIC has no such choice — udpnet pools every receive — but this hub's
// "receive" is a CPU copy on the critical path.)
const pooledCopyMax = 512

// deliver copies the packet into a delay queue with the hub latency plus
// any extra fault delay, dropping on overflow. The copy is mandatory — the
// sender reuses its encode scratch after the call returns. Small packets
// land in pooled buffers (see pooledCopyMax); the consumer releases either
// kind with transport.Buffers.Put, which recycles pooled buffers and
// counts the rest as discards.
func (ep *Endpoint) deliver(ch chan timedPkt, pkt []byte, extra time.Duration) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	var cp []byte
	if len(pkt) <= pooledCopyMax {
		cp = transport.Buffers.Get()[:len(pkt)]
	} else {
		cp = make([]byte, len(pkt))
	}
	copy(cp, pkt)
	ep.seq++
	select {
	case ch <- timedPkt{due: time.Now().Add(ep.latency + extra), seq: ep.seq, pkt: cp}:
	default:
		// Queue full: drop, as a kernel socket buffer would — accounted
		// against the receiving endpoint — and recycle the buffer.
		ep.Drops.Inc()
		transport.Buffers.Put(cp)
	}
}

// Data implements transport.Transport.
func (ep *Endpoint) Data() <-chan []byte { return ep.data }

// Token implements transport.Transport.
func (ep *Endpoint) Token() <-chan []byte { return ep.token }

// Close implements transport.Transport.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	ep.mu.Unlock()
	ep.hub.remove(ep)
	close(ep.dataIn)
	close(ep.tokenIn)
	ep.wg.Wait()
	return nil
}
