package memnet

import (
	"bytes"
	"testing"
	"time"

	"accelring/internal/transport"
)

// TestSenderBufferReuseSafe pins the send side of the ownership contract:
// Multicast/Unicast borrow pkt only for the duration of the call, so a
// sender may overwrite its encode scratch immediately afterwards without
// corrupting in-flight deliveries (which the hub copies into pooled
// buffers).
func TestSenderBufferReuseSafe(t *testing.T) {
	h := NewHub(1)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	defer b.Close()

	scratch := make([]byte, 64)
	const rounds = 50
	for i := 0; i < rounds; i++ {
		for j := range scratch {
			scratch[j] = byte(i)
		}
		if err := a.Multicast(scratch); err != nil {
			t.Fatal(err)
		}
		// Overwrite the scratch right away, before the delayed delivery
		// fires — exactly what the runtime loop's reused encode buffer does.
		for j := range scratch {
			scratch[j] = 0xFF
		}
	}
	want := make([]byte, 64)
	for i := 0; i < rounds; i++ {
		pkt := recvWithin(t, b.Data(), 2*time.Second)
		for j := range want {
			want[j] = byte(i)
		}
		if !bytes.Equal(pkt, want) {
			t.Fatalf("round %d: delivery corrupted by sender reuse: got %x", i, pkt[:4])
		}
		transport.Buffers.Put(pkt)
	}
}

// TestDeliveryRecyclesPool checks that the receive path draws from and
// returns to the shared pool: consuming packets and Putting them back keeps
// the pool's working set recycling (hits accumulate) instead of allocating
// per delivery, and queue-full drops return their buffers too.
func TestDeliveryRecyclesPool(t *testing.T) {
	h := NewHub(1)
	h.SetLatency(0)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	defer b.Close()

	before := transport.Buffers.Snapshot()
	const rounds = 200
	for i := 0; i < rounds; i++ {
		if err := a.Unicast(2, []byte("tok")); err != nil {
			t.Fatal(err)
		}
		transport.Buffers.Put(recvWithin(t, b.Token(), 2*time.Second))
	}
	after := transport.Buffers.Snapshot()
	if puts := after.Puts - before.Puts; puts < rounds {
		t.Fatalf("pool saw %d puts over %d deliveries", puts, rounds)
	}
	// Steady state must recycle: after the first few warm-up misses, every
	// Get is a hit. Other tests share the process-wide pool, so assert a
	// conservative majority rather than an exact count.
	gets := (after.Hits - before.Hits) + (after.Misses - before.Misses)
	if gets < rounds {
		t.Fatalf("pool saw %d gets over %d deliveries", gets, rounds)
	}
	if after.Hits-before.Hits < gets/2 {
		t.Fatalf("pool recycling ineffective: %d hits of %d gets", after.Hits-before.Hits, gets)
	}
}
