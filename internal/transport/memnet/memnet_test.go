package memnet

import (
	"testing"
	"time"

	"accelring/internal/transport"
)

func recvWithin(t *testing.T, ch <-chan []byte, d time.Duration) []byte {
	t.Helper()
	select {
	case pkt := <-ch:
		return pkt
	case <-time.After(d):
		t.Fatal("no packet within deadline")
		return nil
	}
}

func expectNothing(t *testing.T, ch <-chan []byte, d time.Duration) {
	t.Helper()
	select {
	case pkt := <-ch:
		t.Fatalf("unexpected packet %q", pkt)
	case <-time.After(d):
	}
}

func TestMulticastReachesAllButSender(t *testing.T) {
	h := NewHub(1)
	h.SetLatency(0)
	a, b, c := h.Join(1), h.Join(2), h.Join(3)
	defer a.Close()
	defer b.Close()
	defer c.Close()

	if err := a.Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, b.Data(), time.Second); string(got) != "x" {
		t.Fatalf("b got %q", got)
	}
	if got := recvWithin(t, c.Data(), time.Second); string(got) != "x" {
		t.Fatalf("c got %q", got)
	}
	expectNothing(t, a.Data(), 20*time.Millisecond)
}

func TestUnicastGoesToTokenChannel(t *testing.T) {
	h := NewHub(1)
	h.SetLatency(0)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	defer b.Close()
	if err := a.Unicast(2, []byte("tok")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, b.Token(), time.Second); string(got) != "tok" {
		t.Fatalf("got %q", got)
	}
	expectNothing(t, b.Data(), 20*time.Millisecond)
}

func TestUnicastToSelf(t *testing.T) {
	h := NewHub(1)
	h.SetLatency(0)
	a := h.Join(1)
	defer a.Close()
	if err := a.Unicast(1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, a.Token(), time.Second); string(got) != "self" {
		t.Fatalf("got %q", got)
	}
}

func TestUnicastUnknownPeer(t *testing.T) {
	h := NewHub(1)
	a := h.Join(1)
	defer a.Close()
	if err := a.Unicast(9, []byte("x")); err != transport.ErrUnknownPeer {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestPartitionBlocksTraffic(t *testing.T) {
	h := NewHub(1)
	h.SetLatency(0)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	defer b.Close()
	h.SetPartition(2, 1)
	if err := a.Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := a.Unicast(2, []byte("y")); err != nil {
		t.Fatal(err)
	}
	expectNothing(t, b.Data(), 20*time.Millisecond)
	expectNothing(t, b.Token(), 20*time.Millisecond)

	h.Heal()
	if err := a.Multicast([]byte("z")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, b.Data(), time.Second); string(got) != "z" {
		t.Fatalf("after heal got %q", got)
	}
}

func TestFullLossDropsEverything(t *testing.T) {
	h := NewHub(1)
	h.SetLatency(0)
	h.SetLossRate(0.9999999)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 50; i++ {
		if err := a.Multicast([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	expectNothing(t, b.Data(), 20*time.Millisecond)
}

func TestLatencyDelaysDelivery(t *testing.T) {
	h := NewHub(1)
	h.SetLatency(30 * time.Millisecond)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if err := a.Multicast([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Data(), time.Second)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~30ms", elapsed)
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	h := NewHub(1)
	a := h.Join(1)
	b := h.Join(2)
	defer b.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Multicast([]byte("x")); err != transport.ErrClosed {
		t.Fatalf("Multicast after close = %v, want ErrClosed", err)
	}
	if err := a.Unicast(2, []byte("x")); err != transport.ErrClosed {
		t.Fatalf("Unicast after close = %v, want ErrClosed", err)
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseStopsDeliveryToEndpoint(t *testing.T) {
	h := NewHub(1)
	h.SetLatency(0)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	b.Close()
	// Sending to a closed endpoint must not panic or error the sender.
	if err := a.Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestPacketsAreCopied(t *testing.T) {
	h := NewHub(1)
	h.SetLatency(0)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	defer b.Close()
	pkt := []byte("orig")
	if err := a.Multicast(pkt); err != nil {
		t.Fatal(err)
	}
	pkt[0] = 'X'
	if got := recvWithin(t, b.Data(), time.Second); string(got) != "orig" {
		t.Fatalf("delivery aliases sender buffer: %q", got)
	}
}

func TestRejoinReplacesEndpoint(t *testing.T) {
	h := NewHub(1)
	h.SetLatency(0)
	old := h.Join(1)
	fresh := h.Join(1)
	defer fresh.Close()
	b := h.Join(2)
	defer b.Close()
	if err := b.Unicast(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, fresh.Token(), time.Second); string(got) != "x" {
		t.Fatalf("got %q", got)
	}
	expectNothing(t, old.Token(), 20*time.Millisecond)
	old.Close()
}

// TestOverflowDropsAreCounted saturates a receiver that never drains its
// Data channel and checks that every overflowing packet lands in the drop
// counter instead of vanishing silently: accepted + dropped must equal
// sent, and no more than the queue capacity can ever be accepted.
func TestOverflowDropsAreCounted(t *testing.T) {
	h := NewHub(1)
	h.SetLatency(0)
	sender := h.Join(1)
	receiver := h.Join(2)
	defer sender.Close()
	defer receiver.Close()

	const sent = 3 * defaultQueue
	for i := 0; i < sent; i++ {
		if err := sender.Multicast([]byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}

	// The pump keeps moving due packets until every one has been accepted
	// or dropped; poll for the accounting to converge.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := receiver.MetricsSnapshot()
		if snap.DatagramsIn+snap.RecvQueueDrops == sent {
			if snap.RecvQueueDrops < sent-defaultQueue {
				t.Fatalf("drops = %d, want >= %d (queue holds at most %d)",
					snap.RecvQueueDrops, sent-defaultQueue, defaultQueue)
			}
			if snap.DatagramsIn > defaultQueue {
				t.Fatalf("accepted %d packets into a queue of %d", snap.DatagramsIn, defaultQueue)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting never converged: %+v (sent %d)", snap, sent)
		}
		time.Sleep(time.Millisecond)
	}

	if out := sender.MetricsSnapshot(); out.DatagramsOut != sent || out.FanoutSends != sent {
		t.Fatalf("sender accounting: %+v, want %d out/fanout", out, sent)
	}
}
