package memnet

import (
	"testing"
	"time"

	"accelring/internal/faultplan"
	"accelring/internal/wire"
)

// wirePkt builds a packet with a valid four-byte wire header so the hub's
// kind classifier sees the given kind.
func wirePkt(kind wire.Kind, body string) []byte {
	pkt := []byte{'A', 'R', 1, byte(kind)}
	return append(pkt, body...)
}

func drain(ch <-chan []byte, d time.Duration) []string {
	var got []string
	deadline := time.After(d)
	for {
		select {
		case pkt := <-ch:
			got = append(got, string(pkt))
		case <-deadline:
			return got
		}
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	h := NewHub(3)
	h.SetLatency(0)
	h.SetDupRate(0.9999999)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	defer b.Close()
	if err := a.Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	got := drain(b.Data(), 50*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("dup rate ~1 delivered %d copies, want 2", len(got))
	}
}

func TestReorderOvertakesDelayedPacket(t *testing.T) {
	h := NewHub(3)
	h.SetLatency(0)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	defer b.Close()

	// Delay every packet sent while reordering is on, then send a fast one.
	h.SetReorder(0.9999999, 50*time.Millisecond)
	if err := a.Multicast([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	h.SetReorder(0, 0)
	if err := a.Multicast([]byte("fast")); err != nil {
		t.Fatal(err)
	}
	got := drain(b.Data(), 200*time.Millisecond)
	if len(got) != 2 || got[0] != "fast" || got[1] != "slow" {
		t.Fatalf("want [fast slow], got %v", got)
	}
}

func TestFIFOPreservedWithoutReordering(t *testing.T) {
	h := NewHub(3)
	h.SetLatency(time.Millisecond)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	defer b.Close()
	want := []string{"1", "2", "3", "4", "5"}
	for _, s := range want {
		if err := a.Multicast([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(b.Data(), 100*time.Millisecond)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestScheduleHeal(t *testing.T) {
	h := NewHub(3)
	h.SetLatency(0)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	defer b.Close()
	h.SetPartition(2, 1)
	h.ScheduleHeal(30 * time.Millisecond)

	if err := a.Multicast([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	if got := drain(b.Data(), 10*time.Millisecond); len(got) != 0 {
		t.Fatalf("partitioned delivery: %v", got)
	}
	time.Sleep(40 * time.Millisecond)
	if err := a.Multicast([]byte("healed")); err != nil {
		t.Fatal(err)
	}
	got := drain(b.Data(), 100*time.Millisecond)
	if len(got) != 1 || got[0] != "healed" {
		t.Fatalf("after scheduled heal got %v", got)
	}
}

func TestApplyFaultsDropsByKind(t *testing.T) {
	h := NewHub(3)
	h.SetLatency(0)
	a, b := h.Join(1), h.Join(2)
	defer a.Close()
	defer b.Close()
	// Drop all tokens, pass all data.
	h.ApplyFaults(&faultplan.Plan{Seed: 1, Links: []faultplan.LinkFault{{
		Kinds: faultplan.MaskToken, Loss: 1.0,
	}}})

	for i := 0; i < 20; i++ {
		if err := a.Unicast(2, wirePkt(wire.KindToken, "tok")); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(b.Token(), 30*time.Millisecond); len(got) != 0 {
		t.Fatalf("token loss 1.0 delivered %d tokens", len(got))
	}
	if err := a.Multicast(wirePkt(wire.KindData, "data")); err != nil {
		t.Fatal(err)
	}
	if got := drain(b.Data(), 100*time.Millisecond); len(got) != 1 {
		t.Fatalf("data should pass untouched, got %v", got)
	}

	h.ApplyFaults(nil)
	if err := a.Unicast(2, wirePkt(wire.KindToken, "tok")); err != nil {
		t.Fatal(err)
	}
	if got := drain(b.Token(), 100*time.Millisecond); len(got) != 1 {
		t.Fatalf("cleared plan still dropping: got %d tokens", len(got))
	}
}

// TestSameSeedSameFaultSequence feeds two identically seeded hubs the same
// single-threaded packet sequence and requires the identical loss pattern:
// the fault decisions must depend only on the seed and the packet
// sequence, never on timing or map iteration order.
func TestSameSeedSameFaultSequence(t *testing.T) {
	pattern := func(seed int64) []bool {
		h := NewHub(seed)
		h.SetLatency(0)
		h.SetLossRate(0.5)
		a := h.Join(1)
		defer a.Close()
		eps := make([]*Endpoint, 0, 4)
		for id := wire.ParticipantID(2); id <= 5; id++ {
			ep := h.Join(id)
			defer ep.Close()
			eps = append(eps, ep)
		}
		var got []bool
		for i := 0; i < 40; i++ {
			if err := a.Multicast([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			// Collect synchronously so arrival is unambiguous per round.
			time.Sleep(2 * time.Millisecond)
			for _, ep := range eps {
				select {
				case <-ep.Data():
					got = append(got, true)
				default:
					got = append(got, false)
				}
			}
		}
		return got
	}
	a, b := pattern(99), pattern(99)
	if len(a) != len(b) {
		t.Fatalf("pattern lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := pattern(100)
	same := len(a) == len(c)
	if same {
		diff := false
		for i := range a {
			if a[i] != c[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced the identical 160-draw loss pattern")
		}
	}
}
