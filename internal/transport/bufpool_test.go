package transport

import (
	"bytes"
	"sync"
	"testing"
)

func TestPoolGetPut(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	p := NewPool()

	b := p.Get()
	if len(b) != MaxPacket || cap(b) != MaxPacket {
		t.Fatalf("Get: len=%d cap=%d, want %d/%d", len(b), cap(b), MaxPacket, MaxPacket)
	}
	s := p.Snapshot()
	if s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("fresh pool Get: %+v, want 1 miss", s)
	}

	// Put a sub-slice (the transport hands the consumer buf[:n]); the pool
	// must recover the full capacity.
	p.Put(b[:17])
	b2 := p.Get()
	if len(b2) != MaxPacket {
		t.Fatalf("recycled Get: len=%d, want %d", len(b2), MaxPacket)
	}
	if &b2[0] != &b[0] {
		t.Fatal("recycled Get did not return the pooled buffer")
	}
	s = p.Snapshot()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Fatalf("after recycle: %+v, want hits=1 misses=1 puts=1", s)
	}
}

func TestPoolPutForeignBuffer(t *testing.T) {
	p := NewPool()
	p.Put(nil)                       // ignored
	p.Put(make([]byte, 16))          // too small: discarded
	p.Put(make([]byte, MaxPacket-1)) // still too small
	if s := p.Snapshot(); s.Discards != 2 || s.Puts != 0 {
		t.Fatalf("foreign puts: %+v, want discards=2 puts=0", s)
	}
	// A larger buffer is acceptable (cap >= size): it is trimmed to size.
	big := make([]byte, 2*MaxPacket)
	p.Put(big)
	if got := p.Get(); cap(got) < MaxPacket {
		t.Fatalf("oversized buffer recycled with cap %d", cap(got))
	}
}

func TestPoolRecyclesManyBuffers(t *testing.T) {
	p := NewPool()
	bufs := make([][]byte, 8)
	for i := range bufs {
		bufs[i] = p.Get()
	}
	for _, b := range bufs {
		p.Put(b)
	}
	// All eight returns must be accepted; subsequent Gets recycle them
	// (sync.Pool may shed entries under GC, so hits is a lower bound).
	for i := 0; i < 8; i++ {
		p.Get()
	}
	s := p.Snapshot()
	if s.Puts != 8 {
		t.Fatalf("puts=%d, want 8", s.Puts)
	}
	if s.Hits < 1 {
		t.Fatalf("hits=%d, want >=1", s.Hits)
	}
}

func TestPoolGetBatchPutBatch(t *testing.T) {
	p := NewPool()
	scratch := make([][]byte, 0, 8)
	bufs := p.GetBatch(scratch, 5)
	if len(bufs) != 5 {
		t.Fatalf("GetBatch returned %d buffers, want 5", len(bufs))
	}
	for i, b := range bufs {
		if len(b) != MaxPacket {
			t.Fatalf("buffer %d: len=%d, want %d", i, len(b), MaxPacket)
		}
	}
	// GetBatch appends: a partially filled destination keeps its prefix.
	more := p.GetBatch(bufs, 2)
	if len(more) != 7 {
		t.Fatalf("append GetBatch: len=%d, want 7", len(more))
	}
	// PutBatch recycles every entry and nils the vector so a retained
	// scratch can never double-put a recycled buffer.
	more[3] = more[3][:100] // sub-slice, as after a receive
	p.PutBatch(more)
	for i, b := range more {
		if b != nil {
			t.Fatalf("PutBatch left entry %d non-nil", i)
		}
	}
	if s := p.Snapshot(); s.Puts != 7 || s.Discards != 0 {
		t.Fatalf("after PutBatch: %+v, want puts=7 discards=0", s)
	}
	// nil entries (already recycled) are tolerated.
	p.PutBatch(more)
	if s := p.Snapshot(); s.Puts != 7 {
		t.Fatalf("PutBatch of nil vector changed counters: %+v", s)
	}
}

func TestPoolGetBatchPutBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	p := NewPool()
	p.PutBatch(p.GetBatch(nil, 8)) // warm the pool
	scratch := make([][]byte, 0, 8)
	allocs := testing.AllocsPerRun(1000, func() {
		scratch = p.GetBatch(scratch[:0], 8)
		p.PutBatch(scratch)
	})
	if allocs != 0 {
		t.Fatalf("warm GetBatch/PutBatch cycle allocates %.1f times/op, want 0", allocs)
	}
}

func TestPoolGetPutAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	p := NewPool()
	p.Put(p.Get()) // warm: one buffer in the pool
	allocs := testing.AllocsPerRun(1000, func() {
		b := p.Get()
		p.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("warm Get/Put cycle allocates %.1f times/op, want 0", allocs)
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := p.Get()
				// Write a distinctive pattern and verify it: exposes
				// double-Get of the same buffer under the race detector
				// and as data corruption.
				fill := byte(g)
				for j := range b[:8] {
					b[j] = fill
				}
				if !bytes.Equal(b[:8], []byte{fill, fill, fill, fill, fill, fill, fill, fill}) {
					t.Errorf("buffer corrupted during concurrent use")
					return
				}
				p.Put(b)
			}
		}(g)
	}
	wg.Wait()
	s := p.Snapshot()
	if s.Hits+s.Misses != 16000 {
		t.Fatalf("gets=%d, want 16000", s.Hits+s.Misses)
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	p := NewPool()
	p.Put(p.Get())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Put(p.Get())
	}
}
