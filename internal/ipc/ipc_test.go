package ipc

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, CmdMulticast, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != CmdMulticast || string(body) != "hello" {
		t.Fatalf("got type %d body %q", typ, body)
	}
}

func TestFrameEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, EvtWelcome, nil); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != EvtWelcome || len(body) != 0 {
		t.Fatalf("got type %d body %q", typ, body)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, CmdMulticast, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	buf := bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	if _, _, err := ReadFrame(buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, CmdJoin, []byte("group")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, n := range []int{0, 2, 4, len(data) - 1} {
		if _, _, err := ReadFrame(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("ReadFrame accepted %d-byte prefix", n)
		}
	}
}

func TestReadFrameZeroLength(t *testing.T) {
	buf := bytes.NewReader([]byte{0, 0, 0, 0})
	if _, _, err := ReadFrame(buf); err == nil {
		t.Fatal("ReadFrame accepted zero-length frame")
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteFrame(&buf, byte(i+1), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		typ, body, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) || body[0] != byte(i) {
			t.Fatalf("frame %d: type %d body %v", i, typ, body)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("err after last frame = %v, want EOF", err)
	}
}

// TestFrameTypeValuesStable pins the wire values: types are append-only,
// so a reordering that silently renumbered them would break deployed
// client↔daemon pairs.
func TestFrameTypeValuesStable(t *testing.T) {
	want := map[string]byte{
		"CmdConnect": CmdConnect, "CmdJoin": CmdJoin, "CmdLeave": CmdLeave,
		"CmdMulticast": CmdMulticast, "EvtWelcome": EvtWelcome,
		"EvtMessage": EvtMessage, "EvtView": EvtView, "CmdStats": CmdStats,
		"EvtStats": EvtStats, "CmdSubscribe": CmdSubscribe, "CmdUnsubscribe": CmdUnsubscribe,
		"CmdResume": CmdResume, "EvtResumed": EvtResumed, "EvtDrain": EvtDrain,
		"CmdGoodbye": CmdGoodbye,
	}
	got := map[string]byte{
		"CmdConnect": 1, "CmdJoin": 2, "CmdLeave": 3, "CmdMulticast": 4,
		"EvtWelcome": 5, "EvtMessage": 6, "EvtView": 7, "CmdStats": 8,
		"EvtStats": 9, "CmdSubscribe": 10, "CmdUnsubscribe": 11,
		"CmdResume": 12, "EvtResumed": 13, "EvtDrain": 14, "CmdGoodbye": 15,
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("frame type values moved:\nhave %v\nwant %v", want, got)
	}
}

// TestSubscribeFrameRoundtrip round-trips the subscription frames the way
// the client library and daemon exchange them: one length-prefixed group
// name as the whole body.
func TestSubscribeFrameRoundtrip(t *testing.T) {
	for _, typ := range []byte{CmdSubscribe, CmdUnsubscribe} {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, PutString(nil, "metrics/feed")); err != nil {
			t.Fatal(err)
		}
		gotTyp, body, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotTyp != typ {
			t.Fatalf("type = %d, want %d", gotTyp, typ)
		}
		group, rest, err := GetString(body)
		if err != nil || group != "metrics/feed" || len(rest) != 0 {
			t.Fatalf("group %q rest %v err %v", group, rest, err)
		}
	}
}

func TestUint64Roundtrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 1<<32 - 1, 1 << 63, ^uint64(0)} {
		b := PutUint64(nil, v)
		got, rest, err := GetUint64(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("v=%d: got %d rest %v err %v", v, got, rest, err)
		}
	}
	if _, _, err := GetUint64([]byte{1, 2, 3}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestStringRoundtrip(t *testing.T) {
	b := PutString(nil, "hello")
	s, rest, err := GetString(b)
	if err != nil || s != "hello" || len(rest) != 0 {
		t.Fatalf("got %q rest %v err %v", s, rest, err)
	}
}

func TestStringsRoundtrip(t *testing.T) {
	in := []string{"a", "", "group with spaces", "日本語"}
	b := PutStrings(nil, in)
	out, rest, err := GetStrings(b)
	if err != nil || len(rest) != 0 {
		t.Fatalf("err %v rest %v", err, rest)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %v want %v", out, in)
	}
}

func TestGetStringTruncated(t *testing.T) {
	if _, _, err := GetString([]byte{0}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := GetString([]byte{0, 5, 'a'}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestGetStringsRejectsHugeCount(t *testing.T) {
	if _, _, err := GetStrings([]byte{0xFF, 0xFF}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuickStringsRoundtrip(t *testing.T) {
	f := func(ss []string) bool {
		if len(ss) > 100 {
			ss = ss[:100]
		}
		for i, s := range ss {
			if len(s) > 1000 {
				ss[i] = s[:1000]
			}
		}
		b := PutStrings(nil, ss)
		out, rest, err := GetStrings(b)
		if err != nil || len(rest) != 0 {
			return false
		}
		if len(out) != len(ss) {
			return false
		}
		for i := range ss {
			if out[i] != ss[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
