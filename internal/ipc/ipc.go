// Package ipc defines the framed client↔daemon IPC protocol shared by the
// daemon (internal/daemon) and the client library (internal/client).
// Frames are length-prefixed: a 4-byte big-endian length covering the
// 1-byte type and the body.
package ipc

import (
	"encoding/binary"
	"errors"
	"io"

	"accelring/internal/wire"
)

// Frame types. New types are appended so wire values stay stable.
const (
	// Client → daemon.
	CmdConnect byte = iota + 1
	CmdJoin
	CmdLeave
	CmdMulticast
	// Daemon → client.
	EvtWelcome
	EvtMessage
	EvtView
	// CmdStats (client → daemon, empty body) requests a StatsSnapshot;
	// the daemon answers with one EvtStats frame carrying it as JSON.
	CmdStats
	EvtStats
	// CmdSubscribe / CmdUnsubscribe (client → daemon, body: one
	// length-prefixed group name) register and withdraw local delivery
	// interest in a group's ordered message stream, without joining the
	// group: the subscriber receives every message addressed to the group
	// but never appears in its membership views and costs the ring
	// nothing. Distinct from CmdJoin, which orders a membership change
	// through the ring. Subscriptions are daemon-local state, dropped
	// with the session.
	CmdSubscribe
	CmdUnsubscribe
	// CmdResume (client → daemon) is the session-resume handshake, sent as
	// the first frame of a reconnected connection instead of CmdConnect.
	// Body: client name (length-prefixed), session ID (8 bytes), the last
	// delivered global stamp (8 bytes), then a counted list of
	// (group, last-delivered per-group sequence) pairs — each a
	// length-prefixed group name followed by 8 bytes. The daemon answers
	// with one EvtResumed frame and, when the session was found alive,
	// replays its fan-out queue from the first frame after the stamp.
	CmdResume
	// EvtResumed (daemon → client) answers CmdResume. Body: one flags byte
	// (resumedFlagResumed: the detached session was found and its stream
	// continues; resumedFlagGap: the daemon dropped frames beyond the
	// client's stamp while it was away, so the resumed stream has a gap),
	// the private name (length-prefixed) and the session ID (8 bytes). When
	// resumedFlagResumed is unset the daemon created a fresh session under
	// the name instead — the client must reset its sequence tracking and
	// replay its joins and subscriptions.
	EvtResumed
	// EvtDrain (daemon → client, empty body) announces that the daemon is
	// draining: it has stopped accepting connections, will flush pending
	// deliveries, and then close. Clients should finish reading and expect
	// the connection to end.
	EvtDrain
	// CmdGoodbye (client → daemon, empty body) announces an intentional
	// close: the daemon must drop the session immediately instead of
	// holding it for the resume window.
	CmdGoodbye
)

// EvtResumed flag bits.
const (
	// ResumedFlagResumed marks a successful resume: the session survived
	// and the stream continues from the client's stamp.
	ResumedFlagResumed byte = 1 << iota
	// ResumedFlagGap marks that frames beyond the client's stamp were
	// dropped while it was away (shed, or evicted past the resume
	// history), so the resumed stream is missing messages.
	ResumedFlagGap
)

// MaxFrame bounds one frame (payload plus protocol headers).
const MaxFrame = wire.MaxPayload + 4096

// Protocol errors.
var (
	// ErrFrameTooLarge reports a frame beyond MaxFrame.
	ErrFrameTooLarge = errors.New("ipc: frame exceeds limit")
	// ErrBadFrame reports a structurally invalid frame body.
	ErrBadFrame = errors.New("ipc: malformed frame")
)

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, body []byte) error {
	if len(body)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// PutString appends a length-prefixed string.
func PutString(dst []byte, s string) []byte {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	dst = append(dst, l[:]...)
	return append(dst, s...)
}

// GetString consumes a length-prefixed string.
func GetString(src []byte) (string, []byte, error) {
	if len(src) < 2 {
		return "", nil, ErrBadFrame
	}
	n := int(binary.BigEndian.Uint16(src))
	src = src[2:]
	if len(src) < n {
		return "", nil, ErrBadFrame
	}
	return string(src[:n]), src[n:], nil
}

// PutUint64 appends an 8-byte big-endian value (sequence stamps, session
// IDs).
func PutUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// GetUint64 consumes an 8-byte big-endian value.
func GetUint64(src []byte) (uint64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, ErrBadFrame
	}
	return binary.BigEndian.Uint64(src), src[8:], nil
}

// PutStrings appends a counted list of length-prefixed strings.
func PutStrings(dst []byte, ss []string) []byte {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(ss)))
	dst = append(dst, l[:]...)
	for _, s := range ss {
		dst = PutString(dst, s)
	}
	return dst
}

// GetStrings consumes a counted list of length-prefixed strings.
func GetStrings(src []byte) ([]string, []byte, error) {
	if len(src) < 2 {
		return nil, nil, ErrBadFrame
	}
	n := int(binary.BigEndian.Uint16(src))
	src = src[2:]
	if n > wire.MaxGroups+wire.MaxMembers {
		return nil, nil, ErrBadFrame
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var s string
		var err error
		s, src, err = GetString(src)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, s)
	}
	return out, src, nil
}
