package ipc

import "encoding/json"

// ClientStats is one connected client's activity as the daemon sees it.
type ClientStats struct {
	// Submits counts multicasts this client submitted into the ring.
	Submits uint64 `json:"submits"`
	// Deliveries counts ordered messages the daemon delivered to it.
	Deliveries uint64 `json:"deliveries"`
}

// StatsSnapshot is the JSON body of an EvtStats frame: the daemon's view
// of its clients and groups, plus the embedded ring node's full metrics
// snapshot. Node is kept as raw JSON so this package does not depend on
// the node's metrics types; callers that want it decoded unmarshal it
// into accelring.MetricsSnapshot.
type StatsSnapshot struct {
	// Daemon is the ring participant ID serving this snapshot.
	Daemon string `json:"daemon"`
	// Sessions counts connected clients; Groups counts groups with at
	// least one member anywhere on the ring.
	Sessions int `json:"sessions"`
	Groups   int `json:"groups"`
	// Clients maps each local client's private name to its counters.
	Clients map[string]ClientStats `json:"clients,omitempty"`
	// Node is the ring node's metrics snapshot (accelring.MetricsSnapshot).
	Node json.RawMessage `json:"node,omitempty"`
}
