package ipc

import "encoding/json"

// ClientStats is one connected client's activity as the daemon sees it.
type ClientStats struct {
	// Submits counts multicasts this client submitted into the ring.
	Submits uint64 `json:"submits"`
	// Deliveries counts ordered messages the daemon accepted into this
	// client's delivery queue.
	Deliveries uint64 `json:"deliveries"`
	// Shed counts ordered messages dropped for this client by the fan-out
	// tier's shed policy because its queue was full.
	Shed uint64 `json:"shed,omitempty"`
	// Backlog is the client's delivery-queue depth at snapshot time;
	// HighWater its maximum over the session.
	Backlog   int `json:"backlog,omitempty"`
	HighWater int `json:"high_water,omitempty"`
	// Subscriptions counts the groups this client currently receives,
	// from membership and explicit subscriptions combined.
	Subscriptions int `json:"subscriptions,omitempty"`
}

// StatsSnapshot is the JSON body of an EvtStats frame: the daemon's view
// of its clients and groups, plus the embedded ring node's full metrics
// snapshot. Node is kept as raw JSON so this package does not depend on
// the node's metrics types; callers that want it decoded unmarshal it
// into accelring.MetricsSnapshot.
type StatsSnapshot struct {
	// Daemon is the ring participant ID serving this snapshot.
	Daemon string `json:"daemon"`
	// Sessions counts connected clients; Groups counts groups with at
	// least one member anywhere on the ring.
	Sessions int `json:"sessions"`
	Groups   int `json:"groups"`
	// Subscriptions counts this daemon's (client, group) delivery-interest
	// edges in the fan-out tier; Shed and Disconnects total the messages
	// dropped and the clients severed by its backpressure policy, named by
	// FanoutPolicy. The tier's full aggregate snapshot rides inside Node
	// (MetricsSnapshot.Fanout).
	Subscriptions int    `json:"subscriptions,omitempty"`
	Shed          uint64 `json:"shed,omitempty"`
	Disconnects   uint64 `json:"disconnects,omitempty"`
	FanoutPolicy  string `json:"fanout_policy,omitempty"`
	// Detached counts sessions whose connection dropped but whose delivery
	// state is being held for the resume window. Resumes, ResumeGaps and
	// ResumeExpired total successful session resumes, resumes whose stream
	// had a gap (frames dropped while away), and detached sessions that
	// expired unresumed.
	Detached      int    `json:"detached,omitempty"`
	Resumes       uint64 `json:"resumes,omitempty"`
	ResumeGaps    uint64 `json:"resume_gaps,omitempty"`
	ResumeExpired uint64 `json:"resume_expired,omitempty"`
	// Draining reports that the daemon has begun a graceful drain; DrainMs
	// is the time the last completed drain spent flushing queues.
	Draining bool  `json:"draining,omitempty"`
	DrainMs  int64 `json:"drain_ms,omitempty"`
	// Clients maps each local client's private name to its counters. At
	// serving scale the daemon omits this map rather than emit a snapshot
	// frame that can't fit MaxFrame: ClientsOmitted reports how many
	// sessions went unlisted (the aggregate counters above still cover
	// them).
	Clients        map[string]ClientStats `json:"clients,omitempty"`
	ClientsOmitted int                    `json:"clients_omitted,omitempty"`
	// Node is the ring node's metrics snapshot (accelring.MetricsSnapshot).
	Node json.RawMessage `json:"node,omitempty"`
}
