package ipc

import (
	"bytes"
	"reflect"
	"testing"
)

// The fuzz targets assert the IPC framing safety contract: arbitrary bytes
// off a client socket must never panic the daemon, and every frame the
// reader accepts must survive a write→read round trip unchanged. Run the
// seeds as tests with `go test`, or fuzz with `go test -fuzz=FuzzFrameStream`.

func seedFrames(f *testing.F) {
	frames := []struct {
		typ  byte
		body []byte
	}{
		{CmdConnect, PutString(nil, "alice")},
		{CmdJoin, PutString(nil, "room")},
		{CmdSubscribe, PutString(nil, "feed")},
		{CmdUnsubscribe, PutString(nil, "feed")},
		{CmdMulticast, append([]byte{1, 0}, PutStrings(nil, []string{"g1", "g2"})...)},
		{CmdStats, nil},
		{EvtWelcome, PutString(nil, "alice@0.0.0.1")},
	}
	var stream bytes.Buffer
	for _, fr := range frames {
		var one bytes.Buffer
		if err := WriteFrame(&one, fr.typ, fr.body); err == nil {
			f.Add(one.Bytes())
			stream.Write(one.Bytes())
		}
	}
	f.Add(stream.Bytes()) // several frames back to back
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
}

// FuzzFrameStream feeds arbitrary bytes through ReadFrame as a stream and
// round-trips every frame it accepts.
func FuzzFrameStream(f *testing.F) {
	seedFrames(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, body, err := ReadFrame(r)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, typ, body); err != nil {
				t.Fatalf("accepted frame does not re-encode: %v", err)
			}
			typ2, body2, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("re-encoded frame does not decode: %v", err)
			}
			if typ2 != typ || !bytes.Equal(body2, body) {
				t.Fatalf("round-trip mismatch: (%d, %x) vs (%d, %x)", typ, body, typ2, body2)
			}
		}
	})
}

// FuzzGetStrings hammers the string-list codec the subscription and
// multicast bodies are built from.
func FuzzGetStrings(f *testing.F) {
	f.Add(PutStrings(nil, []string{"a", "", "group with spaces"}))
	f.Add(PutString(PutStrings(nil, nil), "trailing"))
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		ss, _, err := GetStrings(data)
		if err != nil {
			return
		}
		re := PutStrings(nil, ss)
		ss2, rest, err := GetStrings(re)
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-encoded list does not decode: %v (rest %d)", err, len(rest))
		}
		if len(ss) == 0 && len(ss2) == 0 {
			return
		}
		if !reflect.DeepEqual(ss, ss2) {
			t.Fatalf("round-trip mismatch: %q vs %q", ss, ss2)
		}
	})
}
