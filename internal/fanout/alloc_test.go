package fanout

import "testing"

// blockedSink parks the writer goroutine on a channel so the hot-path
// measurement sees only the publisher's work.
type blockedSink struct{ gate chan struct{} }

func (s blockedSink) WriteFrame(byte, []byte) error {
	<-s.gate
	return nil
}

// TestPublishAllocs gates the fan-out hot path at zero allocations per
// Publish: the encoded body is shared by reference across every
// interested subscriber (decode/encode once), dedup is the stamp
// generation rather than a per-call map, and the ring slots are reused —
// so an additional subscriber costs no allocation. Depth equals the
// initial physical ring so no grow lands inside the measurement; the run
// covers both the enqueue path (filling to depth) and the shed path
// (everything after).
func TestPublishAllocs(t *testing.T) {
	const subs = 64
	gate := make(chan struct{})
	defer close(gate)
	tier := NewTier(Config{QueueDepth: initialRing, Policy: PolicyShed})
	for i := 0; i < subs; i++ {
		sub := tier.Register(blockedSink{gate: gate}, nil, nil)
		tier.Subscribe(sub, "hot", SourceMember)
		tier.Subscribe(sub, "warm", SourceExplicit)
	}
	groups := []string{"hot", "warm"}
	body := make([]byte, 256)
	allocs := testing.AllocsPerRun(200, func() {
		tier.Publish(groups, 1, body, 0, nil)
	})
	if allocs != 0 {
		t.Fatalf("Publish allocates %.1f times per call, want 0", allocs)
	}
}
