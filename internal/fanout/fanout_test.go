package fanout

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recordSink records written frames; its gate, when non-nil, blocks every
// write until the gate channel is closed (or yields an error to return).
type recordSink struct {
	gate chan error

	mu     sync.Mutex
	frames []frame
}

func (s *recordSink) WriteFrame(typ byte, body []byte) error {
	if s.gate != nil {
		if err, ok := <-s.gate; ok || err != nil {
			if err != nil {
				return err
			}
		}
	}
	s.mu.Lock()
	s.frames = append(s.frames, frame{typ: typ, body: body})
	s.mu.Unlock()
	return nil
}

func (s *recordSink) snapshot() []frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]frame(nil), s.frames...)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestInterestRoutingAndDedup(t *testing.T) {
	tier := NewTier(Config{QueueDepth: 64, Policy: PolicyShed})
	a, b, c := &recordSink{}, &recordSink{}, &recordSink{}
	subA := tier.Register(a, nil, nil)
	subB := tier.Register(b, nil, nil)
	subC := tier.Register(c, nil, nil)
	tier.Subscribe(subA, "g1", SourceMember)
	tier.Subscribe(subB, "g2", SourceExplicit)
	// C is interested through both groups and both sources — still one copy.
	tier.Subscribe(subC, "g1", SourceExplicit)
	tier.Subscribe(subC, "g2", SourceMember)

	if n := tier.Publish([]string{"g1", "g2"}, 1, []byte("x"), 0, nil); n != 3 {
		t.Fatalf("Publish enqueued for %d subscribers, want 3", n)
	}
	for name, sink := range map[string]*recordSink{"a": a, "b": b, "c": c} {
		sink := sink
		waitFor(t, name+" delivery", func() bool { return len(sink.snapshot()) >= 1 })
	}
	// C spans both destination groups yet must get exactly one copy.
	time.Sleep(20 * time.Millisecond)
	if got := c.snapshot(); len(got) != 1 {
		t.Fatalf("multi-group subscriber got %d copies, want 1", len(got))
	}
}

func TestUninterestedReceivesNothing(t *testing.T) {
	tier := NewTier(Config{})
	sink := &recordSink{}
	sub := tier.Register(sink, nil, nil)
	tier.Subscribe(sub, "mine", SourceExplicit)
	tier.Publish([]string{"other"}, 1, []byte("x"), 0, nil)
	tier.Publish([]string{"mine"}, 1, []byte("y"), 0, nil)
	waitFor(t, "delivery", func() bool { return len(sink.snapshot()) >= 1 })
	if got := sink.snapshot(); len(got) != 1 || string(got[0].body) != "y" {
		t.Fatalf("got %d frames, want exactly the interested one", len(got))
	}
}

func TestInterestSourcesAreIndependent(t *testing.T) {
	tier := NewTier(Config{})
	sink := &recordSink{}
	sub := tier.Register(sink, nil, nil)
	tier.Subscribe(sub, "g", SourceMember)
	tier.Subscribe(sub, "g", SourceExplicit)
	// Withdrawing membership must not disturb the explicit subscription.
	if removed := tier.Unsubscribe(sub, "g", SourceMember); removed {
		t.Fatal("losing one of two sources removed the interest")
	}
	tier.Publish([]string{"g"}, 1, []byte("still"), 0, nil)
	waitFor(t, "delivery", func() bool { return len(sink.snapshot()) == 1 })
	if removed := tier.Unsubscribe(sub, "g", SourceExplicit); !removed {
		t.Fatal("losing the last source did not remove the interest")
	}
	tier.Publish([]string{"g"}, 1, []byte("gone"), 0, nil)
	time.Sleep(20 * time.Millisecond)
	if got := sink.snapshot(); len(got) != 1 {
		t.Fatalf("got %d frames after unsubscribing, want 1", len(got))
	}
	if snap := tier.Snapshot(); snap.Subscriptions != 0 {
		t.Fatalf("subscriptions = %d, want 0", snap.Subscriptions)
	}
}

func TestPublishSkipsSelfDiscard(t *testing.T) {
	tier := NewTier(Config{})
	self, other := &recordSink{}, &recordSink{}
	subSelf := tier.Register(self, nil, nil)
	subOther := tier.Register(other, nil, nil)
	tier.Subscribe(subSelf, "g", SourceMember)
	tier.Subscribe(subOther, "g", SourceMember)
	if n := tier.Publish([]string{"g"}, 1, []byte("x"), 0, subSelf); n != 1 {
		t.Fatalf("enqueued %d, want 1", n)
	}
	waitFor(t, "other delivery", func() bool { return len(other.snapshot()) == 1 })
	if len(self.snapshot()) != 0 {
		t.Fatal("self-discarded message delivered to sender")
	}
}

func TestShedPolicyBoundsBacklog(t *testing.T) {
	const depth = 4
	tier := NewTier(Config{QueueDepth: depth, Policy: PolicyShed})
	slow := &recordSink{gate: make(chan error)}
	healthy := &recordSink{}
	subSlow := tier.Register(slow, nil, nil)
	subHealthy := tier.Register(healthy, nil, nil)
	tier.Subscribe(subSlow, "g", SourceMember)
	tier.Subscribe(subHealthy, "g", SourceMember)

	const msgs = 32
	for i := 0; i < msgs; i++ {
		// Pace on the healthy queue so only the gated subscriber sheds:
		// the assertion is isolation, not the healthy writer's raw speed.
		waitFor(t, "healthy queue room", func() bool { return subHealthy.Backlog() < depth })
		tier.Publish([]string{"g"}, 1, []byte("m"), 0, nil)
	}
	waitFor(t, "healthy catch-up", func() bool { return len(healthy.snapshot()) == msgs })
	if st := subHealthy.Stats(); st.Shed != 0 {
		t.Fatalf("healthy subscriber shed %d messages", st.Shed)
	}
	st := subSlow.Stats()
	if st.Backlog > depth {
		t.Fatalf("slow backlog %d exceeds depth %d", st.Backlog, depth)
	}
	// The slow writer may hold one popped frame; everything else beyond
	// the queue bound must have been shed.
	if want := uint64(msgs - depth - 1); st.Shed < want {
		t.Fatalf("shed = %d, want >= %d", st.Shed, want)
	}
	snap := tier.Snapshot()
	if snap.Shed != st.Shed {
		t.Fatalf("tier shed %d != subscriber shed %d", snap.Shed, st.Shed)
	}
	if snap.Disconnects != 0 {
		t.Fatalf("shed policy disconnected %d subscribers", snap.Disconnects)
	}
	close(slow.gate) // release the writer so the test tears down cleanly
	tier.Unregister(subSlow)
	tier.Unregister(subHealthy)
}

func TestBlockPolicyBlocksPublisher(t *testing.T) {
	tier := NewTier(Config{QueueDepth: 1, Policy: PolicyBlock})
	slow := &recordSink{gate: make(chan error)}
	sub := tier.Register(slow, nil, nil)
	tier.Subscribe(sub, "g", SourceMember)

	// First publish is popped by the writer (now stuck in the gate),
	// second fills the queue, third must block.
	tier.Publish([]string{"g"}, 1, []byte("1"), 0, nil)
	waitFor(t, "writer holding frame", func() bool { return sub.Backlog() == 0 })
	tier.Publish([]string{"g"}, 1, []byte("2"), 0, nil)
	done := make(chan struct{})
	go func() {
		tier.Publish([]string{"g"}, 1, []byte("3"), 0, nil)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("publish did not block on a full queue under PolicyBlock")
	case <-time.After(50 * time.Millisecond):
	}
	close(slow.gate) // drain
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish never unblocked after the queue drained")
	}
	waitFor(t, "all delivered", func() bool { return len(slow.snapshot()) == 3 })
	if st := sub.Stats(); st.Shed != 0 {
		t.Fatalf("block policy shed %d messages", st.Shed)
	}
}

func TestDisconnectPolicyKillsSlowSubscriber(t *testing.T) {
	tier := NewTier(Config{QueueDepth: 1, Policy: PolicyDisconnect})
	slow := &recordSink{gate: make(chan error, 1)}
	var killed atomic.Bool
	exitErr := make(chan error, 1)
	sub := tier.Register(slow,
		func() {
			killed.Store(true)
			// Sever the "connection": the stuck write returns an error.
			slow.gate <- errors.New("connection reset")
		},
		func(err error) { exitErr <- err })
	tier.Subscribe(sub, "g", SourceMember)

	tier.Publish([]string{"g"}, 1, []byte("1"), 0, nil) // writer pops it, blocks
	waitFor(t, "writer stuck", func() bool { return sub.Backlog() == 0 })
	tier.Publish([]string{"g"}, 1, []byte("2"), 0, nil) // fills the queue
	tier.Publish([]string{"g"}, 1, []byte("3"), 0, nil) // overflows → kill
	if !killed.Load() {
		t.Fatal("onKill did not run synchronously from Publish")
	}
	select {
	case err := <-exitErr:
		if !errors.Is(err, ErrSlowClient) {
			t.Fatalf("exit error = %v, want ErrSlowClient", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer never exited after the kill")
	}
	if snap := tier.Snapshot(); snap.Disconnects != 1 {
		t.Fatalf("disconnects = %d, want 1", snap.Disconnects)
	}
	// A dead subscriber still registered must not accept more frames.
	if n := tier.Publish([]string{"g"}, 1, []byte("4"), 0, nil); n != 0 {
		t.Fatalf("publish to dead subscriber enqueued %d", n)
	}
}

func TestControlFramesExemptFromBound(t *testing.T) {
	const depth = 2
	tier := NewTier(Config{QueueDepth: depth, Policy: PolicyShed})
	sink := &recordSink{gate: make(chan error)}
	sub := tier.Register(sink, nil, nil)
	tier.Subscribe(sub, "g", SourceMember)

	// Fill: writer holds the first message, queue holds depth more. Wait
	// for the writer to pop the first frame before filling, so none of
	// the fill is shed.
	tier.Publish([]string{"g"}, 1, []byte{0}, 0, nil)
	waitFor(t, "writer holding first frame", func() bool { return sub.Backlog() == 0 })
	for i := 1; i <= depth; i++ {
		tier.Publish([]string{"g"}, 1, []byte{byte(i)}, 0, nil)
	}
	if got := sub.Backlog(); got != depth {
		t.Fatalf("backlog = %d, want %d", got, depth)
	}
	// Control frames must still be accepted, past the bound, in order.
	const controls = 8
	for i := 0; i < controls; i++ {
		if !sub.Send(2, []byte{byte(i)}) {
			t.Fatalf("control frame %d rejected", i)
		}
	}
	if got := sub.Backlog(); got != depth+controls {
		t.Fatalf("backlog = %d, want %d", got, depth+controls)
	}
	close(sink.gate)
	waitFor(t, "drain", func() bool { return len(sink.snapshot()) == depth+1+controls })
	frames := sink.snapshot()
	for i, f := range frames {
		wantTyp := byte(1)
		wantByte := byte(i)
		if i > depth {
			wantTyp = 2
			wantByte = byte(i - depth - 1)
		}
		if f.typ != wantTyp || f.body[0] != wantByte {
			t.Fatalf("frame %d = (%d, %d), want (%d, %d): FIFO broken across ring growth",
				i, f.typ, f.body[0], wantTyp, wantByte)
		}
	}
}

func TestUnregisterWithdrawsAllInterests(t *testing.T) {
	tier := NewTier(Config{})
	sink := &recordSink{}
	exited := make(chan error, 1)
	sub := tier.Register(sink, nil, func(err error) { exited <- err })
	for i := 0; i < 5; i++ {
		tier.Subscribe(sub, fmt.Sprintf("g%d", i), SourceExplicit)
	}
	if snap := tier.Snapshot(); snap.Subscriptions != 5 || snap.Subscribers != 1 {
		t.Fatalf("snapshot before unregister: %+v", snap)
	}
	tier.Unregister(sub)
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("exit error = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer never exited after Unregister")
	}
	if snap := tier.Snapshot(); snap.Subscriptions != 0 || snap.Subscribers != 0 {
		t.Fatalf("snapshot after unregister: %+v", snap)
	}
	for i := 0; i < 5; i++ {
		if n := tier.Publish([]string{fmt.Sprintf("g%d", i)}, 1, []byte("x"), 0, nil); n != 0 {
			t.Fatalf("publish after unregister enqueued %d", n)
		}
	}
	// Idempotent.
	tier.Unregister(sub)
}

func TestWriteErrorStopsSubscriber(t *testing.T) {
	tier := NewTier(Config{})
	boom := errors.New("broken pipe")
	sink := &recordSink{gate: make(chan error, 1)}
	sink.gate <- boom
	exited := make(chan error, 1)
	sub := tier.Register(sink, nil, func(err error) { exited <- err })
	tier.Subscribe(sub, "g", SourceMember)
	tier.Publish([]string{"g"}, 1, []byte("x"), 0, nil)
	select {
	case err := <-exited:
		if !errors.Is(err, boom) {
			t.Fatalf("exit error = %v, want the sink error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer never exited after a write error")
	}
}

// TestConcurrentChurn hammers the tier from many goroutines — publishers,
// subscription churn, register/unregister — to give the race detector
// something to chew on.
func TestConcurrentChurn(t *testing.T) {
	tier := NewTier(Config{QueueDepth: 16, Policy: PolicyShed})
	groups := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sink := &recordSink{}
				sub := tier.Register(sink, nil, nil)
				for _, g := range groups {
					tier.Subscribe(sub, g, SourceExplicit)
				}
				tier.Subscribe(sub, groups[i%len(groups)], SourceMember)
				tier.Unsubscribe(sub, groups[(i+1)%len(groups)], SourceExplicit)
				tier.Unregister(sub)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		body := []byte("payload")
		for {
			select {
			case <-stop:
				return
			default:
				tier.Publish(groups, 1, body, 0, nil)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tier.Snapshot()
			}
		}
	}()

	// Wait for the churn workers, then stop the publisher and snapshotter.
	churnersDone := make(chan struct{})
	go func() {
		defer close(churnersDone)
		for tier.Snapshot().Subscribers != 0 {
			time.Sleep(time.Millisecond)
		}
	}()
	select {
	case <-churnersDone:
	case <-time.After(30 * time.Second):
		t.Fatal("churn never settled")
	}
	close(stop)
	wg.Wait()
	if snap := tier.Snapshot(); snap.Subscribers != 0 || snap.Subscriptions != 0 {
		t.Fatalf("tier not empty after churn: %+v", snap)
	}
}
