package fanout

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// publishSeq publishes n stamped single-byte messages to group g,
// continuing the stamp sequence at from+1. Bodies carry the stamp so sinks
// can be checked against exact suffixes.
func publishSeq(tier *Tier, g string, from uint64, n int) uint64 {
	for i := 0; i < n; i++ {
		from++
		tier.Publish([]string{g}, 1, []byte{byte(from)}, from, nil)
	}
	return from
}

// stamps extracts the single-byte stamp bodies a sink recorded.
func stamps(frames []frame) []byte {
	out := make([]byte, 0, len(frames))
	for _, f := range frames {
		out = append(out, f.body[0])
	}
	return out
}

func expectStamps(t *testing.T, sink *recordSink, want ...byte) {
	t.Helper()
	waitFor(t, fmt.Sprintf("%d frames", len(want)), func() bool {
		return len(sink.snapshot()) >= len(want)
	})
	got := stamps(sink.snapshot())
	if len(got) != len(want) {
		t.Fatalf("sink saw stamps %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sink saw stamps %v, want %v", got, want)
		}
	}
}

// TestResumeExactSuffix is the clean path: everything published while the
// subscriber was away is queued, nothing is dropped, and the resumed sink
// sees exactly the suffix after its stamp.
func TestResumeExactSuffix(t *testing.T) {
	for _, policy := range []Policy{PolicyDisconnect, PolicyShed, PolicyBlock} {
		t.Run(policy.String(), func(t *testing.T) {
			tier := NewTier(Config{QueueDepth: 64, Policy: policy, HistoryDepth: 64})
			old := &recordSink{}
			sub := tier.Register(old, nil, nil)
			tier.Subscribe(sub, "g", SourceMember)

			last := publishSeq(tier, "g", 0, 3)
			expectStamps(t, old, 1, 2, 3)
			if !tier.Detach(sub) {
				t.Fatal("Detach refused a live subscriber")
			}
			last = publishSeq(tier, "g", last, 4) // queued while away
			replacement := &recordSink{}
			gap, err := tier.Attach(sub, replacement, 3, nil, nil)
			if err != nil || gap {
				t.Fatalf("Attach: gap=%v err=%v", gap, err)
			}
			expectStamps(t, replacement, 4, 5, 6, 7)
			// The resumed stream keeps flowing.
			publishSeq(tier, "g", last, 1)
			expectStamps(t, replacement, 4, 5, 6, 7, 8)
		})
	}
}

// TestResumeRewindsHistory covers frames that were written to the dying
// connection but never received: the client resumes from an older stamp
// and the suffix is replayed out of the history ring, gap-free.
func TestResumeRewindsHistory(t *testing.T) {
	tier := NewTier(Config{QueueDepth: 64, Policy: PolicyShed, HistoryDepth: 64})
	old := &recordSink{}
	sub := tier.Register(old, nil, nil)
	tier.Subscribe(sub, "g", SourceMember)

	publishSeq(tier, "g", 0, 5)
	expectStamps(t, old, 1, 2, 3, 4, 5)
	tier.Detach(sub)
	// Client only got through stamp 2; 3..5 died in the socket buffer.
	replacement := &recordSink{}
	gap, err := tier.Attach(sub, replacement, 2, nil, nil)
	if err != nil || gap {
		t.Fatalf("Attach: gap=%v err=%v", gap, err)
	}
	expectStamps(t, replacement, 3, 4, 5)

	// A second detach/resume cycle must not replay duplicates from stale
	// history copies.
	tier.Detach(sub)
	third := &recordSink{}
	gap, err = tier.Attach(sub, third, 5, nil, nil)
	if err != nil || gap {
		t.Fatalf("second Attach: gap=%v err=%v", gap, err)
	}
	publishSeq(tier, "g", 5, 1)
	expectStamps(t, third, 6)
}

// TestShedWhileAwayReportsGap overflows a detached shed-policy queue: the
// oldest suffix is gone, Attach must say so, and the sink still gets the
// queued remainder in order.
func TestShedWhileAwayReportsGap(t *testing.T) {
	tier := NewTier(Config{QueueDepth: 4, Policy: PolicyShed, HistoryDepth: 8})
	old := &recordSink{}
	sub := tier.Register(old, nil, nil)
	tier.Subscribe(sub, "g", SourceMember)

	publishSeq(tier, "g", 0, 2)
	expectStamps(t, old, 1, 2)
	tier.Detach(sub)
	// 6 messages against depth 4: the last two are shed (drop-newest).
	publishSeq(tier, "g", 2, 6)
	if got := sub.Stats().Shed; got != 2 {
		t.Fatalf("shed %d messages while away, want 2", got)
	}
	replacement := &recordSink{}
	gap, err := tier.Attach(sub, replacement, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !gap {
		t.Fatal("Attach reported no gap after shedding while away")
	}
	expectStamps(t, replacement, 3, 4, 5, 6)
}

// TestBlockPolicyDegradesToShedWhileDetached: with no writer draining, a
// blocking queue would wedge the publisher (the daemon main loop — the
// very goroutine that serves the resume). Publish must return, shedding.
func TestBlockPolicyDegradesToShedWhileDetached(t *testing.T) {
	tier := NewTier(Config{QueueDepth: 4, Policy: PolicyBlock, HistoryDepth: 8})
	sub := tier.Register(&recordSink{}, nil, nil)
	tier.Subscribe(sub, "g", SourceMember)
	tier.Detach(sub)

	done := make(chan uint64, 1)
	go func() { done <- publishSeq(tier, "g", 0, 8) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a detached subscriber")
	}
	replacement := &recordSink{}
	gap, err := tier.Attach(sub, replacement, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !gap {
		t.Fatal("Attach reported no gap after shed-while-detached")
	}
	expectStamps(t, replacement, 1, 2, 3, 4)
}

// TestDisconnectPolicyKillsDetached: under PolicyDisconnect an overflow
// while away kills the session outright; the resume must fail cleanly so
// the daemon falls back to a fresh session.
func TestDisconnectPolicyKillsDetached(t *testing.T) {
	tier := NewTier(Config{QueueDepth: 4, Policy: PolicyDisconnect, HistoryDepth: 8})
	killed := false
	sub := tier.Register(&recordSink{}, func() { killed = true }, nil)
	tier.Subscribe(sub, "g", SourceMember)
	tier.Detach(sub)

	publishSeq(tier, "g", 0, 5)
	if killed {
		t.Fatal("kill callback fired after Detach cleared it")
	}
	if _, err := tier.Attach(sub, &recordSink{}, 0, nil, nil); !errors.Is(err, ErrResumeClosed) {
		t.Fatalf("Attach err = %v, want ErrResumeClosed", err)
	}
}

// TestHistoryEvictionReportsGap: frames evicted past the history depth are
// unreplayable, so resuming from before them is a gap even though nothing
// was shed.
func TestHistoryEvictionReportsGap(t *testing.T) {
	tier := NewTier(Config{QueueDepth: 64, Policy: PolicyShed, HistoryDepth: 2})
	old := &recordSink{}
	sub := tier.Register(old, nil, nil)
	tier.Subscribe(sub, "g", SourceMember)

	publishSeq(tier, "g", 0, 5) // history keeps 4,5; 1..3 evicted
	expectStamps(t, old, 1, 2, 3, 4, 5)
	tier.Detach(sub)
	replacement := &recordSink{}
	gap, err := tier.Attach(sub, replacement, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !gap {
		t.Fatal("Attach reported no gap though stamp 3 was evicted")
	}
	expectStamps(t, replacement, 4, 5) // best-effort suffix after the gap
}

// TestNoHistoryResumeIsConservative: with history disabled every written
// frame is unreplayable, so a resume from behind the write head reports a
// gap, while a resume from the exact last stamp is clean.
func TestNoHistoryResumeIsConservative(t *testing.T) {
	tier := NewTier(Config{QueueDepth: 64, Policy: PolicyShed})
	old := &recordSink{}
	sub := tier.Register(old, nil, nil)
	tier.Subscribe(sub, "g", SourceMember)

	publishSeq(tier, "g", 0, 3)
	expectStamps(t, old, 1, 2, 3)
	tier.Detach(sub)
	if gap, err := tier.Attach(sub, &recordSink{}, 2, nil, nil); err != nil || !gap {
		t.Fatalf("Attach from stamp 2: gap=%v err=%v, want gap", gap, err)
	}
	tier.Detach(sub)
	if gap, err := tier.Attach(sub, &recordSink{}, 3, nil, nil); err != nil || gap {
		t.Fatalf("Attach from stamp 3: gap=%v err=%v, want clean", gap, err)
	}
}

// TestWriteFailureFrameReplayed: a frame that was popped but whose write
// failed as the connection died must still reach the resumed sink — it
// went into history before the write.
func TestWriteFailureFrameReplayed(t *testing.T) {
	tier := NewTier(Config{QueueDepth: 64, Policy: PolicyShed, HistoryDepth: 8})
	gate := make(chan error, 1)
	old := &recordSink{gate: gate}
	exited := make(chan error, 1)
	sub := tier.Register(old, nil, func(err error) { exited <- err })
	tier.Subscribe(sub, "g", SourceMember)

	tier.Publish([]string{"g"}, 1, []byte{1}, 1, nil)
	gate <- errors.New("conn reset")
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
		t.Fatal("writer did not exit on sink failure")
	}
	// The failed write closed the subscriber; a real daemon detaches
	// before the conn dies under it only sometimes — when the writer loses
	// the race, resume must fail cleanly rather than hang.
	if _, err := tier.Attach(sub, &recordSink{}, 0, nil, nil); !errors.Is(err, ErrResumeClosed) {
		t.Fatalf("Attach err = %v, want ErrResumeClosed", err)
	}
}

// TestDetachBeatsWriteFailure: when Detach lands while the writer is stuck
// in a failing write, the popped frame is replayed to the resumed sink and
// no exit callback fires.
func TestDetachBeatsWriteFailure(t *testing.T) {
	tier := NewTier(Config{QueueDepth: 64, Policy: PolicyShed, HistoryDepth: 8})
	gate := make(chan error, 1)
	old := &recordSink{gate: gate}
	exitCalls := make(chan error, 4)
	sub := tier.Register(old, nil, func(err error) { exitCalls <- err })
	tier.Subscribe(sub, "g", SourceMember)

	tier.Publish([]string{"g"}, 1, []byte{1}, 1, nil)
	// Writer has popped the frame and is parked in WriteFrame on the gate.
	waitFor(t, "writer to pop", func() bool { return sub.Backlog() == 0 })
	tier.Detach(sub)
	gate <- errors.New("conn reset") // write now fails, post-detach
	replacement := &recordSink{}
	gap, err := tier.Attach(sub, replacement, 0, nil, nil)
	if err != nil || gap {
		t.Fatalf("Attach: gap=%v err=%v", gap, err)
	}
	expectStamps(t, replacement, 1)
	select {
	case err := <-exitCalls:
		t.Fatalf("exit callback fired with %v after detach", err)
	case <-time.After(50 * time.Millisecond):
	}
}
