package fanout

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrSlowClient is handed to a subscriber's exit callback when
// PolicyDisconnect killed it for exceeding its queue depth.
var ErrSlowClient = errors.New("fanout: subscriber exceeded its delivery queue")

// Sink is where a subscriber's writer drains frames — for the daemon, the
// client's IPC connection.
type Sink interface {
	WriteFrame(typ byte, body []byte) error
}

type frame struct {
	typ  byte
	body []byte
}

// enqueue outcomes for a message frame.
type enqResult uint8

const (
	enqOK enqResult = iota
	enqShed
	enqKilled
	enqDead
)

// Subscriber is one registered client of the tier: a bounded FIFO frame
// queue drained by a dedicated writer goroutine. Messages and control
// frames share the one queue so a client observes views, stats and
// messages in exactly the order the daemon emitted them.
type Subscriber struct {
	sink   Sink
	onKill func()
	onExit func(error)

	mu       sync.Mutex
	notEmpty sync.Cond // frame enqueued, or queue closed
	notFull  sync.Cond // frame dequeued, or queue closed
	ring     []frame   // circular; len(ring) is physical capacity
	head     int
	count    int
	depth    int // policy bound for message frames; control may exceed it
	closed   bool
	killErr  error // reason the queue was closed, nil for plain Close

	highWater int

	// msgs counts message frames accepted into the queue (the daemon's
	// per-client delivery counter), shed counts message frames dropped by
	// PolicyShed, delivered counts frames the writer wrote to the sink.
	msgs      atomic.Uint64
	shed      atomic.Uint64
	delivered atomic.Uint64
	// subCount mirrors len(interests) for lock-free Stats.
	subCount atomic.Int64

	// stamp and interests are owned by the tier's lock.
	stamp     uint64
	interests map[string]Source
}

// initialRing is the starting physical ring capacity. The queue bound is
// logical (depth); the ring grows toward it on demand, so an idle
// subscriber costs ~2KB rather than depth×frame — what lets one daemon
// carry tens of thousands of mostly-drained clients.
const initialRing = 64

func newSubscriber(depth int, sink Sink, onKill func(), onExit func(error)) *Subscriber {
	phys := depth
	if phys > initialRing {
		phys = initialRing
	}
	s := &Subscriber{
		sink:      sink,
		onKill:    onKill,
		onExit:    onExit,
		ring:      make([]frame, phys),
		depth:     depth,
		interests: make(map[string]Source),
	}
	s.notEmpty.L = &s.mu
	s.notFull.L = &s.mu
	return s
}

// enqueueMessage applies the backpressure policy and, when there is (or
// becomes) room, appends a message frame.
func (s *Subscriber) enqueueMessage(typ byte, body []byte, policy Policy) enqResult {
	s.mu.Lock()
	if policy == PolicyBlock {
		for s.count >= s.depth && !s.closed {
			s.notFull.Wait()
		}
	}
	if s.closed {
		s.mu.Unlock()
		return enqDead
	}
	if s.count >= s.depth {
		switch policy {
		case PolicyShed:
			s.mu.Unlock()
			s.shed.Add(1)
			return enqShed
		default: // PolicyDisconnect
			s.closeLocked(ErrSlowClient)
			s.mu.Unlock()
			return enqKilled
		}
	}
	if s.count == len(s.ring) {
		s.grow()
	}
	s.append(frame{typ: typ, body: body})
	s.mu.Unlock()
	s.msgs.Add(1)
	return enqOK
}

// Send enqueues a control frame (welcome, view, stats). Control frames
// are exempt from the queue bound: they are rare, required for protocol
// correctness, and dropping or blocking on them would corrupt a client's
// view of the world, so the ring grows past the configured depth if it
// must. It reports false if the subscriber is already closed.
func (s *Subscriber) Send(typ byte, body []byte) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if s.count == len(s.ring) {
		s.grow()
	}
	s.append(frame{typ: typ, body: body})
	s.mu.Unlock()
	return true
}

// append assumes s.mu is held and there is physical room.
func (s *Subscriber) append(f frame) {
	s.ring[(s.head+s.count)%len(s.ring)] = f
	s.count++
	if s.count > s.highWater {
		s.highWater = s.count
	}
	if s.count == 1 {
		s.notEmpty.Signal()
	}
}

// grow doubles the physical ring, preserving FIFO order. Caller holds
// s.mu. Messages get here while backlog climbs toward depth; control
// frames also grow past it (they are exempt from the bound).
func (s *Subscriber) grow() {
	next := make([]frame, 2*len(s.ring))
	for i := 0; i < s.count; i++ {
		next[i] = s.ring[(s.head+i)%len(s.ring)]
	}
	s.ring = next
	s.head = 0
}

// writeLoop drains the queue onto the sink until the queue closes or the
// sink fails, then runs the exit callback exactly once.
func (s *Subscriber) writeLoop() {
	var err error
	for {
		s.mu.Lock()
		for s.count == 0 && !s.closed {
			s.notEmpty.Wait()
		}
		if s.closed {
			err = s.killErr
			s.mu.Unlock()
			break
		}
		f := s.ring[s.head]
		s.ring[s.head] = frame{} // drop the body reference
		s.head = (s.head + 1) % len(s.ring)
		s.count--
		s.notFull.Broadcast()
		s.mu.Unlock()
		if werr := s.sink.WriteFrame(f.typ, f.body); werr != nil {
			// Mark closed so a publisher blocked in PolicyBlock (or the
			// owner) learns this subscriber is gone. If the queue was
			// already killed (PolicyDisconnect severing a stuck write),
			// the kill reason outranks the resulting socket error.
			s.mu.Lock()
			if s.closed && s.killErr != nil {
				werr = s.killErr
			} else {
				s.closeLocked(werr)
			}
			s.mu.Unlock()
			err = werr
			break
		}
		s.delivered.Add(1)
	}
	if s.onExit != nil {
		s.onExit(err)
	}
}

// Close shuts the queue down and stops the writer; pending frames are
// discarded (the connection is going away with them). Safe to call from
// any goroutine, any number of times.
func (s *Subscriber) Close() {
	s.mu.Lock()
	s.closeLocked(nil)
	s.mu.Unlock()
}

// closeLocked assumes s.mu is held.
func (s *Subscriber) closeLocked(reason error) {
	if s.closed {
		return
	}
	s.closed = true
	s.killErr = reason
	s.notEmpty.Broadcast()
	s.notFull.Broadcast()
}

// Backlog returns the current queue depth.
func (s *Subscriber) Backlog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Stats is a point-in-time view of one subscriber's counters.
type Stats struct {
	// Msgs counts message frames accepted into the queue; Shed counts
	// message frames dropped by PolicyShed; Delivered counts frames of
	// every type written to the sink.
	Msgs      uint64
	Shed      uint64
	Delivered uint64
	// Backlog is the current queue depth, HighWater its maximum since
	// registration, Subscriptions the current interest count.
	Backlog       int
	HighWater     int
	Subscriptions int
}

// Stats snapshots the subscriber's counters.
func (s *Subscriber) Stats() Stats {
	s.mu.Lock()
	backlog, high := s.count, s.highWater
	s.mu.Unlock()
	return Stats{
		Msgs:          s.msgs.Load(),
		Shed:          s.shed.Load(),
		Delivered:     s.delivered.Load(),
		Backlog:       backlog,
		HighWater:     high,
		Subscriptions: int(s.subCount.Load()),
	}
}
