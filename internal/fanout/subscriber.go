package fanout

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrSlowClient is handed to a subscriber's exit callback when
// PolicyDisconnect killed it for exceeding its queue depth.
var ErrSlowClient = errors.New("fanout: subscriber exceeded its delivery queue")

// Sink is where a subscriber's writer drains frames — for the daemon, the
// client's IPC connection.
type Sink interface {
	WriteFrame(typ byte, body []byte) error
}

// frame is one queued delivery. stamp is the publisher's monotone delivery
// stamp for message frames, 0 for control frames (views, stats, welcomes);
// only stamped frames participate in resume replay and gap accounting.
type frame struct {
	typ   byte
	body  []byte
	stamp uint64
}

// enqueue outcomes for a message frame.
type enqResult uint8

const (
	enqOK enqResult = iota
	enqShed
	enqKilled
	enqDead
)

// Subscriber is one registered client of the tier: a bounded FIFO frame
// queue drained by a dedicated writer goroutine. Messages and control
// frames share the one queue so a client observes views, stats and
// messages in exactly the order the daemon emitted them.
//
// A subscriber can be detached (Tier.Detach) when its connection drops:
// the writer stops, the queue keeps accumulating under the backpressure
// policy, and a later Attach with a replacement sink resumes the stream —
// rewinding recently written frames past the client's acknowledged stamp
// from the history ring, so socket-buffer loss at disconnect does not
// become a silent gap.
type Subscriber struct {
	// sink, onKill and onExit belong to the current attachment; after
	// Register they are read and written only under s.mu (Detach, Attach,
	// and the writer's self-detach on sink failure all hold it).
	sink   Sink
	onKill func()
	onExit func(error)

	// resumable makes a sink write failure detach the queue instead of
	// closing it (set once at Register from the tier config).
	resumable bool

	mu       sync.Mutex
	notEmpty sync.Cond // frame enqueued, or queue closed/detached
	notFull  sync.Cond // frame dequeued, or queue closed
	ring     []frame   // circular; len(ring) is physical capacity
	head     int
	count    int
	depth    int // policy bound for message frames; control may exceed it
	closed   bool
	killErr  error // reason the queue was closed, nil for plain Close

	// detached marks a subscriber whose writer has been stopped pending a
	// resume; gen identifies the current writer so a superseded one that
	// wakes from a stuck sink write exits without touching shared state.
	detached bool
	gen      uint64

	// hist is the replay ring of the last histCap message frames handed to
	// the sink (pushed before the write, so a frame lost to a failing
	// write is still replayable). dropped is the highest stamp that is no
	// longer replayable — shed under pressure or evicted from history — so
	// a resume from stamp S has a gap iff dropped > S. Allocated on first
	// use: an idle subscriber pays nothing.
	hist      []frame
	histHead  int
	histCount int
	histCap   int
	dropped   uint64

	highWater int

	// msgs counts message frames accepted into the queue (the daemon's
	// per-client delivery counter), shed counts message frames dropped by
	// PolicyShed, delivered counts frames the writer wrote to the sink.
	msgs      atomic.Uint64
	shed      atomic.Uint64
	delivered atomic.Uint64
	// subCount mirrors len(interests) for lock-free Stats.
	subCount atomic.Int64

	// stamp and interests are owned by the tier's lock.
	stamp     uint64
	interests map[string]Source
}

// initialRing is the starting physical ring capacity. The queue bound is
// logical (depth); the ring grows toward it on demand, so an idle
// subscriber costs ~2KB rather than depth×frame — what lets one daemon
// carry tens of thousands of mostly-drained clients.
const initialRing = 64

func newSubscriber(depth, histCap int, sink Sink, onKill func(), onExit func(error)) *Subscriber {
	phys := depth
	if phys > initialRing {
		phys = initialRing
	}
	s := &Subscriber{
		sink:      sink,
		onKill:    onKill,
		onExit:    onExit,
		ring:      make([]frame, phys),
		depth:     depth,
		histCap:   histCap,
		interests: make(map[string]Source),
	}
	s.notEmpty.L = &s.mu
	s.notFull.L = &s.mu
	return s
}

// enqueueMessage applies the backpressure policy and, when there is (or
// becomes) room, appends a message frame. While the subscriber is
// detached, PolicyBlock degrades to PolicyShed: the publisher is the
// daemon's main loop, which is also the goroutine that would serve the
// resume that unblocks the queue — blocking it would deadlock the daemon.
func (s *Subscriber) enqueueMessage(typ byte, body []byte, stamp uint64, policy Policy) enqResult {
	s.mu.Lock()
	if policy == PolicyBlock && !s.detached {
		for s.count >= s.depth && !s.closed && !s.detached {
			s.notFull.Wait()
		}
	}
	if s.closed {
		s.mu.Unlock()
		return enqDead
	}
	if s.count >= s.depth {
		switch {
		case policy == PolicyShed || (policy == PolicyBlock && s.detached):
			if stamp > s.dropped {
				s.dropped = stamp
			}
			s.mu.Unlock()
			s.shed.Add(1)
			return enqShed
		default: // PolicyDisconnect
			s.closeLocked(ErrSlowClient)
			s.mu.Unlock()
			return enqKilled
		}
	}
	if s.count == len(s.ring) {
		s.grow()
	}
	s.append(frame{typ: typ, body: body, stamp: stamp})
	s.mu.Unlock()
	s.msgs.Add(1)
	return enqOK
}

// Send enqueues a control frame (welcome, view, stats). Control frames
// are exempt from the queue bound: they are rare, required for protocol
// correctness, and dropping or blocking on them would corrupt a client's
// view of the world, so the ring grows past the configured depth if it
// must. It reports false if the subscriber is already closed.
func (s *Subscriber) Send(typ byte, body []byte) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if s.count == len(s.ring) {
		s.grow()
	}
	s.append(frame{typ: typ, body: body})
	s.mu.Unlock()
	return true
}

// append assumes s.mu is held and there is physical room.
func (s *Subscriber) append(f frame) {
	s.ring[(s.head+s.count)%len(s.ring)] = f
	s.count++
	if s.count > s.highWater {
		s.highWater = s.count
	}
	if s.count == 1 {
		s.notEmpty.Signal()
	}
}

// grow doubles the physical ring, preserving FIFO order. Caller holds
// s.mu. Messages get here while backlog climbs toward depth; control
// frames also grow past it (they are exempt from the bound).
func (s *Subscriber) grow() {
	next := make([]frame, 2*len(s.ring))
	for i := 0; i < s.count; i++ {
		next[i] = s.ring[(s.head+i)%len(s.ring)]
	}
	s.ring = next
	s.head = 0
}

// histPush records a frame as handed to the sink. With history disabled
// (histCap <= 0) a written frame is immediately unreplayable, so dropped
// advances and any resume past it reports a gap. Caller holds s.mu.
func (s *Subscriber) histPush(f frame) {
	if f.stamp == 0 {
		return
	}
	if s.histCap <= 0 {
		if f.stamp > s.dropped {
			s.dropped = f.stamp
		}
		return
	}
	if s.hist == nil {
		s.hist = make([]frame, s.histCap)
	}
	if s.histCount == s.histCap {
		old := s.hist[s.histHead]
		if old.stamp > s.dropped {
			s.dropped = old.stamp
		}
		s.hist[s.histHead] = frame{}
		s.histHead = (s.histHead + 1) % len(s.hist)
		s.histCount--
	}
	s.hist[(s.histHead+s.histCount)%len(s.hist)] = f
	s.histCount++
}

// rewind moves the history frames with stamp beyond the client's
// acknowledged stamp back to the front of the pending queue (they will
// re-enter history as they are rewritten) and reports whether the resumed
// stream has a gap. Caller holds s.mu.
func (s *Subscriber) rewind(stamp uint64) (gap bool) {
	k := 0
	for i := 0; i < s.histCount; i++ {
		if s.hist[(s.histHead+i)%len(s.hist)].stamp > stamp {
			k = s.histCount - i
			break
		}
	}
	for len(s.ring) < s.count+k {
		s.grow()
	}
	if k > 0 {
		s.head = (s.head - k + len(s.ring)) % len(s.ring)
		base := s.histCount - k
		for i := 0; i < k; i++ {
			slot := (s.histHead + base + i) % len(s.hist)
			s.ring[(s.head+i)%len(s.ring)] = s.hist[slot]
			s.hist[slot] = frame{}
		}
		s.histCount = base
		s.count += k
		if s.count > s.highWater {
			s.highWater = s.count
		}
	}
	return s.dropped > stamp
}

// writeLoop drains the queue onto the sink until the queue closes, the
// subscriber detaches, or the sink fails; the exit callback of the
// attachment it belongs to runs exactly once, and not at all when the
// writer was superseded or deliberately detached.
func (s *Subscriber) writeLoop(gen uint64) {
	for {
		s.mu.Lock()
		for s.count == 0 && !s.closed && !s.detached && s.gen == gen {
			s.notEmpty.Wait()
		}
		if s.gen != gen || s.detached {
			s.mu.Unlock()
			return
		}
		if s.closed {
			err := s.killErr
			exit := s.onExit
			s.mu.Unlock()
			if exit != nil {
				exit(err)
			}
			return
		}
		f := s.ring[s.head]
		s.ring[s.head] = frame{} // drop the body reference
		s.head = (s.head + 1) % len(s.ring)
		s.count--
		s.histPush(f)
		sink := s.sink
		s.notFull.Broadcast()
		s.mu.Unlock()
		if werr := sink.WriteFrame(f.typ, f.body); werr != nil {
			s.mu.Lock()
			if s.gen != gen || s.detached {
				// The failing write raced a detach or a resume; the frame is
				// already in history, so the next attachment replays it.
				s.mu.Unlock()
				return
			}
			if s.resumable && !s.closed {
				// The connection died under the writer: detach rather than
				// close, so the owner can hold the session for a resume.
				// The exit callback still fires so the owner learns.
				s.detached = true
				exit := s.onExit
				s.onKill, s.onExit, s.sink = nil, nil, nil
				s.notFull.Broadcast()
				s.mu.Unlock()
				if exit != nil {
					exit(werr)
				}
				return
			}
			// Mark closed so a publisher blocked in PolicyBlock (or the
			// owner) learns this subscriber is gone. If the queue was
			// already killed (PolicyDisconnect severing a stuck write),
			// the kill reason outranks the resulting socket error.
			if s.closed && s.killErr != nil {
				werr = s.killErr
			} else {
				s.closeLocked(werr)
			}
			exit := s.onExit
			s.mu.Unlock()
			if exit != nil {
				exit(werr)
			}
			return
		}
		s.delivered.Add(1)
	}
}

// Close shuts the queue down and stops the writer; pending frames are
// discarded (the connection is going away with them). Safe to call from
// any goroutine, any number of times.
func (s *Subscriber) Close() {
	s.mu.Lock()
	s.closeLocked(nil)
	s.mu.Unlock()
}

// closeLocked assumes s.mu is held.
func (s *Subscriber) closeLocked(reason error) {
	if s.closed {
		return
	}
	s.closed = true
	s.killErr = reason
	s.notEmpty.Broadcast()
	s.notFull.Broadcast()
}

// Backlog returns the current queue depth.
func (s *Subscriber) Backlog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// state reports the queue depth and whether the subscriber is live but
// detached, in one lock acquisition for Snapshot.
func (s *Subscriber) state() (backlog int, detached bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count, s.detached && !s.closed
}

// Stats is a point-in-time view of one subscriber's counters.
type Stats struct {
	// Msgs counts message frames accepted into the queue; Shed counts
	// message frames dropped by PolicyShed; Delivered counts frames of
	// every type written to the sink.
	Msgs      uint64
	Shed      uint64
	Delivered uint64
	// Backlog is the current queue depth, HighWater its maximum since
	// registration, Subscriptions the current interest count.
	Backlog       int
	HighWater     int
	Subscriptions int
}

// Stats snapshots the subscriber's counters.
func (s *Subscriber) Stats() Stats {
	s.mu.Lock()
	backlog, high := s.count, s.highWater
	s.mu.Unlock()
	return Stats{
		Msgs:          s.msgs.Load(),
		Shed:          s.shed.Load(),
		Delivered:     s.delivered.Load(),
		Backlog:       backlog,
		HighWater:     high,
		Subscriptions: int(s.subCount.Load()),
	}
}
