// Package fanout is the daemon's client delivery tier: a subscription
// registry that routes each ordered message — decoded and encoded exactly
// once — to the local sessions interested in any of its destination
// groups, through per-subscriber bounded queues with a selectable
// backpressure policy.
//
// The tier exists so the daemon's protocol loop never blocks on a slow
// client socket (unless explicitly configured to, via PolicyBlock) and
// never pays per-subscriber allocations on the delivery hot path: Publish
// performs one registry walk with stamp-based duplicate suppression and
// one ring-buffer slot write per interested subscriber, nothing else.
// FlexCast's genuineness principle, applied at the serving tier: only the
// sessions a message addresses are ever touched by its delivery.
//
// Interest has two independent sources per (subscriber, group):
// ring-ordered group membership (the daemon subscribes members so they
// receive what the group semantics owe them) and explicit local
// subscriptions (CmdSubscribe — a tap on the ordered stream without
// membership, the scalable path for large read-only audiences). A
// subscriber stays interested until both sources are gone.
package fanout

import (
	"errors"
	"sync"
)

// Policy selects what Publish does when a subscriber's queue is full.
type Policy uint8

const (
	// PolicyDisconnect kills the slow subscriber: its queue is closed, its
	// writer exits with ErrSlowClient, and the owner's exit callback runs.
	// This is the classic Spread-style daemon behavior and the default.
	PolicyDisconnect Policy = iota
	// PolicyShed drops the newest message for that subscriber only,
	// counting it as shed; healthy subscribers are unaffected and the slow
	// subscriber's backlog stays bounded by the queue depth.
	PolicyShed
	// PolicyBlock makes Publish wait until the subscriber drains a slot
	// (or dies). This stalls the publisher — typically the daemon's
	// protocol loop — and therefore every other client behind it; it
	// exists for deployments that would rather apply global backpressure
	// than lose or disconnect anything.
	PolicyBlock
)

// String returns the flag-friendly policy name.
func (p Policy) String() string {
	switch p {
	case PolicyDisconnect:
		return "disconnect"
	case PolicyShed:
		return "shed"
	case PolicyBlock:
		return "block"
	}
	return "unknown"
}

// ParsePolicy parses a flag-friendly policy name ("disconnect", "shed" or
// "drop" for drop-newest, "block").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "disconnect":
		return PolicyDisconnect, nil
	case "shed", "drop":
		return PolicyShed, nil
	case "block":
		return PolicyBlock, nil
	}
	return 0, errors.New("fanout: unknown policy " + s)
}

// Source identifies why a subscriber is interested in a group. The two
// sources are independent: joining and leaving a group as a member does
// not disturb an explicit subscription, and vice versa.
type Source uint8

const (
	// SourceMember marks interest implied by ring-ordered group
	// membership.
	SourceMember Source = 1 << iota
	// SourceExplicit marks interest from a CmdSubscribe-style local
	// subscription.
	SourceExplicit
)

// DefaultQueueDepth is the per-subscriber queue depth when Config leaves
// it zero. It matches the pre-tier daemon's session queue.
const DefaultQueueDepth = 8192

// Config configures a Tier.
type Config struct {
	// QueueDepth bounds each subscriber's delivery queue, in frames;
	// zero selects DefaultQueueDepth. Control frames (views, stats,
	// welcomes) are exempt from the bound — they are rare, small, and
	// required for protocol correctness — so the bound governs message
	// backlog.
	QueueDepth int
	// Policy is the backpressure policy applied to message frames when a
	// queue is full; the zero value is PolicyDisconnect.
	Policy Policy
}

// Tier is the delivery tier: a registry of subscribers and their group
// interests, plus the tier-wide counters. Registration, subscription and
// publishing may be called from any goroutine; the expected arrangement
// is a single publisher (the daemon main loop) with concurrent writer
// goroutines draining the queues.
type Tier struct {
	cfg Config

	mu     sync.Mutex
	groups map[string][]*Subscriber
	subs   map[*Subscriber]struct{}
	// stamp is the per-Publish dedup generation: a subscriber reached
	// through several destination groups of one message carries the
	// current stamp after the first visit and is skipped on the rest.
	// Stamps live on subscribers but are owned by the tier lock, so
	// unregistering a subscriber can never leave stale dedup state behind
	// (the per-message map the daemon once reused for this is gone).
	stamp uint64

	subscriptions int
	published     uint64
	enqueued      uint64
	shed          uint64
	disconnects   uint64
	// deliveredGone accumulates the delivered counts of unregistered
	// subscribers, so Snapshot's Delivered stays cumulative across client
	// churn instead of dropping when a session ends.
	deliveredGone uint64
}

// NewTier creates an empty tier.
func NewTier(cfg Config) *Tier {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	return &Tier{
		cfg:    cfg,
		groups: make(map[string][]*Subscriber),
		subs:   make(map[*Subscriber]struct{}),
	}
}

// Policy returns the tier's configured backpressure policy.
func (t *Tier) Policy() Policy { return t.cfg.Policy }

// Register adds a subscriber draining into sink and starts its writer.
//
// onKill, if non-nil, runs synchronously from inside Publish (with the
// tier locked) when PolicyDisconnect kills the subscriber; its job is to
// sever the underlying connection so a writer stuck in a blocking sink
// write comes unstuck. It must not call back into the tier.
//
// onExit, if non-nil, runs exactly once from the writer goroutine when it
// stops: with ErrSlowClient when PolicyDisconnect killed the subscriber,
// with the write error if the sink failed, or with nil after Close. The
// callback must not call back into the tier synchronously with work that
// needs the publisher to make progress (it may, and typically does,
// schedule an Unregister).
func (t *Tier) Register(sink Sink, onKill func(), onExit func(error)) *Subscriber {
	s := newSubscriber(t.cfg.QueueDepth, sink, onKill, onExit)
	t.mu.Lock()
	t.subs[s] = struct{}{}
	t.mu.Unlock()
	go s.writeLoop()
	return s
}

// Unregister removes the subscriber from every group and from the tier,
// and closes its queue (stopping its writer if still running). Safe to
// call more than once.
func (t *Tier) Unregister(s *Subscriber) {
	t.mu.Lock()
	if _, ok := t.subs[s]; ok {
		delete(t.subs, s)
		for group := range s.interests {
			t.removeFromGroup(s, group)
		}
		t.subscriptions -= len(s.interests)
		t.deliveredGone += s.delivered.Load()
		clear(s.interests)
		s.subCount.Store(0)
	}
	t.mu.Unlock()
	s.Close()
}

// Subscribe records the subscriber's interest in a group from the given
// source. It reports whether the subscriber was previously uninterested
// in the group (i.e. this call made it a receiver).
func (t *Tier) Subscribe(s *Subscriber, group string, src Source) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.subs[s]; !ok {
		return false
	}
	prev := s.interests[group]
	if prev&src != 0 {
		return false
	}
	s.interests[group] = prev | src
	if prev != 0 {
		return false
	}
	t.groups[group] = append(t.groups[group], s)
	t.subscriptions++
	s.subCount.Add(1)
	return true
}

// Unsubscribe withdraws one source of interest; the subscriber stops
// receiving the group only once no source remains. It reports whether
// this call removed the subscriber from the group's receiver set.
func (t *Tier) Unsubscribe(s *Subscriber, group string, src Source) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	prev := s.interests[group]
	if prev&src == 0 {
		return false
	}
	rest := prev &^ src
	if rest != 0 {
		s.interests[group] = rest
		return false
	}
	delete(s.interests, group)
	t.removeFromGroup(s, group)
	t.subscriptions--
	s.subCount.Add(-1)
	return true
}

// removeFromGroup drops s from a group's receiver slice. Caller holds
// t.mu.
func (t *Tier) removeFromGroup(s *Subscriber, group string) {
	subs := t.groups[group]
	for i, v := range subs {
		if v == s {
			last := len(subs) - 1
			subs[i] = subs[last]
			subs[last] = nil
			subs = subs[:last]
			break
		}
	}
	if len(subs) == 0 {
		delete(t.groups, group)
	} else {
		t.groups[group] = subs
	}
}

// Publish routes one already-encoded frame to every subscriber interested
// in any of the destination groups, exactly once per subscriber even when
// it is interested in several of them, skipping skip (the self-discard
// case). The frame body is retained by the queues until written and must
// not be mutated afterwards. It returns the number of subscribers the
// frame was enqueued for.
//
// Publish allocates nothing: the per-message cost is the registry walk
// plus one ring-slot write (or one policy action) per interested
// subscriber.
func (t *Tier) Publish(groups []string, typ byte, body []byte, skip *Subscriber) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stamp++
	t.published++
	n := 0
	for _, group := range groups {
		for _, s := range t.groups[group] {
			if s == skip || s.stamp == t.stamp {
				continue
			}
			s.stamp = t.stamp
			switch s.enqueueMessage(typ, body, t.cfg.Policy) {
			case enqOK:
				n++
				t.enqueued++
			case enqShed:
				t.shed++
			case enqKilled:
				t.disconnects++
				if s.onKill != nil {
					s.onKill()
				}
			case enqDead:
				// Closed subscriber still awaiting Unregister; nothing to do.
			}
		}
	}
	return n
}

// TierSnapshot is a point-in-time aggregate view of the tier, suitable
// for embedding in a metrics snapshot. Per-subscriber detail is the
// owner's business (the daemon reports it per client in its stats
// snapshot); the tier reports totals so the snapshot stays small even
// with 100k subscribers.
type TierSnapshot struct {
	// Policy and QueueDepth echo the configuration.
	Policy     string `json:"policy"`
	QueueDepth int    `json:"queue_depth"`
	// Subscribers counts registered subscribers; Subscriptions counts
	// (subscriber, group) interest edges.
	Subscribers   int `json:"subscribers"`
	Subscriptions int `json:"subscriptions"`
	// Published counts Publish calls (ordered messages offered to the
	// tier); Enqueued counts per-subscriber copies accepted into queues;
	// Delivered counts frames actually written to sinks (all frame
	// types, cumulative across departed subscribers); Shed counts
	// message copies dropped by PolicyShed; Disconnects counts
	// subscribers killed by PolicyDisconnect.
	Published   uint64 `json:"published"`
	Enqueued    uint64 `json:"enqueued"`
	Delivered   uint64 `json:"delivered"`
	Shed        uint64 `json:"shed"`
	Disconnects uint64 `json:"disconnects"`
	// MaxBacklog is the deepest queue at snapshot time.
	MaxBacklog int `json:"max_backlog"`
}

// Snapshot assembles the tier-wide counters.
func (t *Tier) Snapshot() TierSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TierSnapshot{
		Policy:        t.cfg.Policy.String(),
		QueueDepth:    t.cfg.QueueDepth,
		Subscribers:   len(t.subs),
		Subscriptions: t.subscriptions,
		Published:     t.published,
		Enqueued:      t.enqueued,
		Delivered:     t.deliveredGone,
		Shed:          t.shed,
		Disconnects:   t.disconnects,
	}
	for s := range t.subs {
		snap.Delivered += s.delivered.Load()
		if b := s.Backlog(); b > snap.MaxBacklog {
			snap.MaxBacklog = b
		}
	}
	return snap
}
