// Package fanout is the daemon's client delivery tier: a subscription
// registry that routes each ordered message — decoded and encoded exactly
// once — to the local sessions interested in any of its destination
// groups, through per-subscriber bounded queues with a selectable
// backpressure policy.
//
// The tier exists so the daemon's protocol loop never blocks on a slow
// client socket (unless explicitly configured to, via PolicyBlock) and
// never pays per-subscriber allocations on the delivery hot path: Publish
// performs one registry walk with stamp-based duplicate suppression and
// one ring-buffer slot write per interested subscriber, nothing else.
// FlexCast's genuineness principle, applied at the serving tier: only the
// sessions a message addresses are ever touched by its delivery.
//
// Interest has two independent sources per (subscriber, group):
// ring-ordered group membership (the daemon subscribes members so they
// receive what the group semantics owe them) and explicit local
// subscriptions (CmdSubscribe — a tap on the ordered stream without
// membership, the scalable path for large read-only audiences). A
// subscriber stays interested until both sources are gone.
package fanout

import (
	"errors"
	"sync"
)

// Policy selects what Publish does when a subscriber's queue is full.
type Policy uint8

const (
	// PolicyDisconnect kills the slow subscriber: its queue is closed, its
	// writer exits with ErrSlowClient, and the owner's exit callback runs.
	// This is the classic Spread-style daemon behavior and the default.
	PolicyDisconnect Policy = iota
	// PolicyShed drops the newest message for that subscriber only,
	// counting it as shed; healthy subscribers are unaffected and the slow
	// subscriber's backlog stays bounded by the queue depth.
	PolicyShed
	// PolicyBlock makes Publish wait until the subscriber drains a slot
	// (or dies). This stalls the publisher — typically the daemon's
	// protocol loop — and therefore every other client behind it; it
	// exists for deployments that would rather apply global backpressure
	// than lose or disconnect anything.
	PolicyBlock
)

// String returns the flag-friendly policy name.
func (p Policy) String() string {
	switch p {
	case PolicyDisconnect:
		return "disconnect"
	case PolicyShed:
		return "shed"
	case PolicyBlock:
		return "block"
	}
	return "unknown"
}

// ParsePolicy parses a flag-friendly policy name ("disconnect", "shed" or
// "drop" for drop-newest, "block").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "disconnect":
		return PolicyDisconnect, nil
	case "shed", "drop":
		return PolicyShed, nil
	case "block":
		return PolicyBlock, nil
	}
	return 0, errors.New("fanout: unknown policy " + s)
}

// Source identifies why a subscriber is interested in a group. The two
// sources are independent: joining and leaving a group as a member does
// not disturb an explicit subscription, and vice versa.
type Source uint8

const (
	// SourceMember marks interest implied by ring-ordered group
	// membership.
	SourceMember Source = 1 << iota
	// SourceExplicit marks interest from a CmdSubscribe-style local
	// subscription.
	SourceExplicit
)

// DefaultQueueDepth is the per-subscriber queue depth when Config leaves
// it zero. It matches the pre-tier daemon's session queue.
const DefaultQueueDepth = 8192

// Config configures a Tier.
type Config struct {
	// QueueDepth bounds each subscriber's delivery queue, in frames;
	// zero selects DefaultQueueDepth. Control frames (views, stats,
	// welcomes) are exempt from the bound — they are rare, small, and
	// required for protocol correctness — so the bound governs message
	// backlog.
	QueueDepth int
	// Policy is the backpressure policy applied to message frames when a
	// queue is full; the zero value is PolicyDisconnect.
	Policy Policy
	// HistoryDepth bounds each subscriber's replay history: the last N
	// message frames handed to its sink, kept so a detached session can
	// resume past frames lost in the dying connection's socket buffer.
	// Zero disables history — a resume then reports a gap whenever any
	// frame was written beyond the client's acknowledged stamp.
	HistoryDepth int
	// Resumable makes a sink write failure detach the subscriber (exit
	// callback still fires, with the write error) instead of closing its
	// queue, so the owner can hold the session for a resume. Without it a
	// failed write kills the subscriber, the pre-resume behavior.
	Resumable bool
}

// Tier is the delivery tier: a registry of subscribers and their group
// interests, plus the tier-wide counters. Registration, subscription and
// publishing may be called from any goroutine; the expected arrangement
// is a single publisher (the daemon main loop) with concurrent writer
// goroutines draining the queues.
type Tier struct {
	cfg Config

	mu     sync.Mutex
	groups map[string][]*Subscriber
	subs   map[*Subscriber]struct{}
	// stamp is the per-Publish dedup generation: a subscriber reached
	// through several destination groups of one message carries the
	// current stamp after the first visit and is skipped on the rest.
	// Stamps live on subscribers but are owned by the tier lock, so
	// unregistering a subscriber can never leave stale dedup state behind
	// (the per-message map the daemon once reused for this is gone).
	stamp uint64

	subscriptions int
	published     uint64
	enqueued      uint64
	shed          uint64
	disconnects   uint64
	// deliveredGone accumulates the delivered counts of unregistered
	// subscribers, so Snapshot's Delivered stays cumulative across client
	// churn instead of dropping when a session ends.
	deliveredGone uint64
}

// NewTier creates an empty tier.
func NewTier(cfg Config) *Tier {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	return &Tier{
		cfg:    cfg,
		groups: make(map[string][]*Subscriber),
		subs:   make(map[*Subscriber]struct{}),
	}
}

// Policy returns the tier's configured backpressure policy.
func (t *Tier) Policy() Policy { return t.cfg.Policy }

// Register adds a subscriber draining into sink and starts its writer.
//
// onKill, if non-nil, runs synchronously from inside Publish (with the
// tier locked) when PolicyDisconnect kills the subscriber; its job is to
// sever the underlying connection so a writer stuck in a blocking sink
// write comes unstuck. It must not call back into the tier.
//
// onExit, if non-nil, runs exactly once from the writer goroutine when it
// stops: with ErrSlowClient when PolicyDisconnect killed the subscriber,
// with the write error if the sink failed, or with nil after Close. The
// callback must not call back into the tier synchronously with work that
// needs the publisher to make progress (it may, and typically does,
// schedule an Unregister).
func (t *Tier) Register(sink Sink, onKill func(), onExit func(error)) *Subscriber {
	s := newSubscriber(t.cfg.QueueDepth, t.cfg.HistoryDepth, sink, onKill, onExit)
	s.resumable = t.cfg.Resumable
	s.gen = 1
	t.mu.Lock()
	t.subs[s] = struct{}{}
	t.mu.Unlock()
	go s.writeLoop(1)
	return s
}

// ErrResumeClosed reports an Attach against a subscriber that is closed or
// no longer registered: the detached session died (e.g. PolicyDisconnect
// overflowed its queue while it was away) and cannot be resumed.
var ErrResumeClosed = errors.New("fanout: subscriber closed before resume")

// ErrNotDetached reports an Attach against a subscriber that still has a
// live writer.
var ErrNotDetached = errors.New("fanout: subscriber is not detached")

// Detach stops the subscriber's writer without closing its queue: the
// connection is gone but the session may come back. Interests stay
// registered, the queue keeps accumulating under the backpressure policy
// (PolicyBlock degrades to shed — see enqueueMessage), and the kill/exit
// callbacks are cleared so nothing fires into the departed owner. It
// reports false when the subscriber is closed or unregistered (nothing to
// resume later).
func (t *Tier) Detach(s *Subscriber) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.subs[s]; !ok {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if !s.detached {
		s.detached = true
		s.onKill = nil
		s.onExit = nil
		s.sink = nil
		s.notEmpty.Broadcast()
		s.notFull.Broadcast()
	}
	return true
}

// ResumeGap reports whether a resume of the detached subscriber from the
// given stamp would have a gap, without attaching. The answer stays valid
// until the next Publish touching the subscriber — in the daemon both run
// on the main loop, which uses the answer to put the resume announcement
// on the wire ahead of the replayed frames.
func (t *Tier) ResumeGap(s *Subscriber, stamp uint64) (gap bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.subs[s]; !ok {
		return false, ErrResumeClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrResumeClosed
	}
	if !s.detached {
		return false, ErrNotDetached
	}
	return s.dropped > stamp, nil
}

// Attach resumes a detached subscriber onto a replacement sink: history
// frames past the client's acknowledged stamp are rewound to the front of
// the queue, the callbacks are replaced, and a fresh writer starts. gap
// reports that frames beyond stamp were dropped while the subscriber was
// away (shed, or evicted past the history depth) — the resumed stream is
// missing them and the client must be told. Attach fails with
// ErrResumeClosed when the subscriber died while detached.
func (t *Tier) Attach(s *Subscriber, sink Sink, stamp uint64, onKill func(), onExit func(error)) (gap bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.subs[s]; !ok {
		return false, ErrResumeClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrResumeClosed
	}
	if !s.detached {
		return false, ErrNotDetached
	}
	gap = s.rewind(stamp)
	s.detached = false
	s.sink = sink
	s.onKill = onKill
	s.onExit = onExit
	s.gen++
	go s.writeLoop(s.gen)
	return gap, nil
}

// Unregister removes the subscriber from every group and from the tier,
// and closes its queue (stopping its writer if still running). Safe to
// call more than once.
func (t *Tier) Unregister(s *Subscriber) {
	t.mu.Lock()
	if _, ok := t.subs[s]; ok {
		delete(t.subs, s)
		for group := range s.interests {
			t.removeFromGroup(s, group)
		}
		t.subscriptions -= len(s.interests)
		t.deliveredGone += s.delivered.Load()
		clear(s.interests)
		s.subCount.Store(0)
	}
	t.mu.Unlock()
	s.Close()
}

// Subscribe records the subscriber's interest in a group from the given
// source. It reports whether the subscriber was previously uninterested
// in the group (i.e. this call made it a receiver).
func (t *Tier) Subscribe(s *Subscriber, group string, src Source) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.subs[s]; !ok {
		return false
	}
	prev := s.interests[group]
	if prev&src != 0 {
		return false
	}
	s.interests[group] = prev | src
	if prev != 0 {
		return false
	}
	t.groups[group] = append(t.groups[group], s)
	t.subscriptions++
	s.subCount.Add(1)
	return true
}

// Unsubscribe withdraws one source of interest; the subscriber stops
// receiving the group only once no source remains. It reports whether
// this call removed the subscriber from the group's receiver set.
func (t *Tier) Unsubscribe(s *Subscriber, group string, src Source) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	prev := s.interests[group]
	if prev&src == 0 {
		return false
	}
	rest := prev &^ src
	if rest != 0 {
		s.interests[group] = rest
		return false
	}
	delete(s.interests, group)
	t.removeFromGroup(s, group)
	t.subscriptions--
	s.subCount.Add(-1)
	return true
}

// removeFromGroup drops s from a group's receiver slice. Caller holds
// t.mu.
func (t *Tier) removeFromGroup(s *Subscriber, group string) {
	subs := t.groups[group]
	for i, v := range subs {
		if v == s {
			last := len(subs) - 1
			subs[i] = subs[last]
			subs[last] = nil
			subs = subs[:last]
			break
		}
	}
	if len(subs) == 0 {
		delete(t.groups, group)
	} else {
		t.groups[group] = subs
	}
}

// Publish routes one already-encoded frame to every subscriber interested
// in any of the destination groups, exactly once per subscriber even when
// it is interested in several of them, skipping skip (the self-discard
// case). The frame body is retained by the queues until written and must
// not be mutated afterwards. stamp is the publisher's delivery stamp —
// strictly monotone across Publish calls, carried in each subscriber's
// history for resume replay and gap accounting; pass 0 for streams that
// never resume. It returns the number of subscribers the frame was
// enqueued for.
//
// Publish allocates nothing: the per-message cost is the registry walk
// plus one ring-slot write (or one policy action) per interested
// subscriber.
func (t *Tier) Publish(groups []string, typ byte, body []byte, stamp uint64, skip *Subscriber) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stamp++
	t.published++
	n := 0
	for _, group := range groups {
		for _, s := range t.groups[group] {
			if s == skip || s.stamp == t.stamp {
				continue
			}
			s.stamp = t.stamp
			switch s.enqueueMessage(typ, body, stamp, t.cfg.Policy) {
			case enqOK:
				n++
				t.enqueued++
			case enqShed:
				t.shed++
			case enqKilled:
				t.disconnects++
				s.mu.Lock()
				kill := s.onKill
				s.mu.Unlock()
				if kill != nil {
					kill()
				}
			case enqDead:
				// Closed subscriber still awaiting Unregister; nothing to do.
			}
		}
	}
	return n
}

// TierSnapshot is a point-in-time aggregate view of the tier, suitable
// for embedding in a metrics snapshot. Per-subscriber detail is the
// owner's business (the daemon reports it per client in its stats
// snapshot); the tier reports totals so the snapshot stays small even
// with 100k subscribers.
type TierSnapshot struct {
	// Policy and QueueDepth echo the configuration.
	Policy     string `json:"policy"`
	QueueDepth int    `json:"queue_depth"`
	// Subscribers counts registered subscribers; Subscriptions counts
	// (subscriber, group) interest edges.
	Subscribers   int `json:"subscribers"`
	Subscriptions int `json:"subscriptions"`
	// Published counts Publish calls (ordered messages offered to the
	// tier); Enqueued counts per-subscriber copies accepted into queues;
	// Delivered counts frames actually written to sinks (all frame
	// types, cumulative across departed subscribers); Shed counts
	// message copies dropped by PolicyShed; Disconnects counts
	// subscribers killed by PolicyDisconnect.
	Published   uint64 `json:"published"`
	Enqueued    uint64 `json:"enqueued"`
	Delivered   uint64 `json:"delivered"`
	Shed        uint64 `json:"shed"`
	Disconnects uint64 `json:"disconnects"`
	// MaxBacklog is the deepest queue at snapshot time.
	MaxBacklog int `json:"max_backlog"`
	// Detached counts live subscribers whose connection is gone but whose
	// queue is held for a resume. The remaining fields are filled by the
	// tier's owner (the daemon), which runs the resume protocol and the
	// drain: sessions resumed, resumed with a gap, expired unresumed, and
	// the flush time of the last graceful drain.
	Detached      int    `json:"detached,omitempty"`
	Resumes       uint64 `json:"resumes,omitempty"`
	ResumeGaps    uint64 `json:"resume_gaps,omitempty"`
	ResumeExpired uint64 `json:"resume_expired,omitempty"`
	DrainMs       int64  `json:"drain_ms,omitempty"`
}

// Snapshot assembles the tier-wide counters.
func (t *Tier) Snapshot() TierSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TierSnapshot{
		Policy:        t.cfg.Policy.String(),
		QueueDepth:    t.cfg.QueueDepth,
		Subscribers:   len(t.subs),
		Subscriptions: t.subscriptions,
		Published:     t.published,
		Enqueued:      t.enqueued,
		Delivered:     t.deliveredGone,
		Shed:          t.shed,
		Disconnects:   t.disconnects,
	}
	for s := range t.subs {
		snap.Delivered += s.delivered.Load()
		b, det := s.state()
		if b > snap.MaxBacklog {
			snap.MaxBacklog = b
		}
		if det {
			snap.Detached++
		}
	}
	return snap
}

// Backlog totals the pending frames across every registered subscriber —
// what a graceful drain waits to reach zero.
func (t *Tier) Backlog() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for s := range t.subs {
		total += s.Backlog()
	}
	return total
}
