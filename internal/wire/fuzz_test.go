package wire

import (
	"reflect"
	"testing"
)

// The fuzz targets assert the codec safety contract: arbitrary input must
// never panic, and every successfully decoded message must re-encode to a
// packet that decodes to the same message (round-trip stability). Run the
// seeds as tests with `go test`, or fuzz with `go test -fuzz=FuzzDecodeData`.

func seedPackets(f *testing.F) {
	d := &DataMessage{RingID: RingID{Rep: 1, Seq: 4}, Seq: 7, PID: 1, Round: 2,
		Service: ServiceAgreed, Payload: []byte("seed")}
	if pkt, err := d.Encode(); err == nil {
		f.Add(pkt)
	}
	tok := &Token{RingID: RingID{Rep: 1, Seq: 4}, TokenSeq: 9, Seq: 30, ARU: 28,
		RTR: []Seq{29}}
	if pkt, err := tok.Encode(); err == nil {
		f.Add(pkt)
	}
	j := &JoinMessage{Sender: 2, ProcSet: []ParticipantID{1, 2}, RingSeq: 4}
	if pkt, err := j.Encode(); err == nil {
		f.Add(pkt)
	}
	ct := &CommitToken{RingID: RingID{Rep: 1, Seq: 8}, Rotation: 1,
		Members: []CommitMember{{ID: 1, Filled: true}}}
	if pkt, err := ct.Encode(); err == nil {
		f.Add(pkt)
	}
	f.Add([]byte{})
	f.Add([]byte{'A', 'R', Version, byte(KindData)})
}

func FuzzDecodeData(f *testing.F) {
	seedPackets(f)
	f.Fuzz(func(t *testing.T, pkt []byte) {
		m, err := DecodeData(pkt)
		if err != nil {
			return
		}
		re, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		m2, err := DecodeData(re)
		if err != nil {
			t.Fatalf("re-encoded packet does not decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round-trip mismatch:\n%#v\n%#v", m, m2)
		}
	})
}

func FuzzDecodeToken(f *testing.F) {
	seedPackets(f)
	f.Fuzz(func(t *testing.T, pkt []byte) {
		tok, err := DecodeToken(pkt)
		if err != nil {
			return
		}
		re, err := tok.Encode()
		if err != nil {
			t.Fatalf("decoded token does not re-encode: %v", err)
		}
		tok2, err := DecodeToken(re)
		if err != nil {
			t.Fatalf("re-encoded token does not decode: %v", err)
		}
		if !reflect.DeepEqual(tok, tok2) {
			t.Fatal("round-trip mismatch")
		}
	})
}

func FuzzDecodeJoin(f *testing.F) {
	seedPackets(f)
	f.Fuzz(func(t *testing.T, pkt []byte) {
		j, err := DecodeJoin(pkt)
		if err != nil {
			return
		}
		re, err := j.Encode()
		if err != nil {
			t.Fatalf("decoded join does not re-encode: %v", err)
		}
		j2, err := DecodeJoin(re)
		if err != nil {
			t.Fatalf("re-encoded join does not decode: %v", err)
		}
		if !reflect.DeepEqual(j, j2) {
			t.Fatalf("round-trip mismatch:\n%#v\n%#v", j, j2)
		}
	})
}

func FuzzDecodeCommit(f *testing.F) {
	seedPackets(f)
	f.Fuzz(func(t *testing.T, pkt []byte) {
		ct, err := DecodeCommit(pkt)
		if err != nil {
			return
		}
		re, err := ct.Encode()
		if err != nil {
			t.Fatalf("decoded commit token does not re-encode: %v", err)
		}
		ct2, err := DecodeCommit(re)
		if err != nil {
			t.Fatalf("re-encoded commit token does not decode: %v", err)
		}
		if !reflect.DeepEqual(ct, ct2) {
			t.Fatalf("round-trip mismatch:\n%#v\n%#v", ct, ct2)
		}
	})
}

func FuzzUnpackPayloads(f *testing.F) {
	if packed, err := PackPayloads([][]byte{[]byte("a"), []byte("bb")}); err == nil {
		f.Add(packed)
	}
	f.Add([]byte{0, 1, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		payloads, err := UnpackPayloads(b)
		if err != nil {
			return
		}
		re, err := PackPayloads(payloads)
		if err != nil {
			t.Fatalf("unpacked payloads do not re-pack: %v", err)
		}
		again, err := UnpackPayloads(re)
		if err != nil || len(again) != len(payloads) {
			t.Fatalf("re-pack round trip failed: %v", err)
		}
	})
}
