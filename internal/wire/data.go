package wire

import "fmt"

// DataMessage is a multicast data packet: an application payload plus the
// metadata the ordering protocol needs (Section III-B of the paper).
type DataMessage struct {
	// RingID identifies the ring configuration in which the message was
	// sequenced. Messages from foreign rings trigger membership changes
	// and are never delivered directly.
	RingID RingID
	// Seq is the message's position in the total order of its ring.
	Seq Seq
	// PID is the participant that initiated the message.
	PID ParticipantID
	// Round is the token round (hop count) in which the sender held the
	// token when it sequenced this message. The priority-switching policy
	// compares it with the round of the last token processed.
	Round Round
	// PostToken records whether the sender multicast this message in its
	// post-token phase, i.e. after forwarding the token for Round. The
	// second (conservative) priority-switching method keys on it.
	PostToken bool
	// Retrans marks a retransmission of a previously sent message.
	Retrans bool
	// Recovered marks a message re-sent during membership recovery that
	// originated in an earlier ring configuration. Its RingID is the old
	// ring's.
	Recovered bool
	// Packed marks a container of several small application payloads
	// packed into one protocol packet to amortize per-message costs
	// (Spread's message packing). The Payload is then in the
	// PackPayloads format, and every packed message shares this
	// message's Service.
	Packed bool
	// Service is the delivery guarantee requested by the sender.
	Service Service
	// Payload is the application data; the protocol never inspects it.
	Payload []byte
}

// dataFixedSize is the encoded size of everything but the payload.
const dataFixedSize = 4 + // header
	12 + // ring id
	8 + // seq
	4 + // pid
	8 + // round
	1 + // flags
	1 + // service
	4 // payload length

const (
	dataFlagPostToken = 1 << iota
	dataFlagRetrans
	dataFlagRecovered
	dataFlagPacked
)

// EncodedSize returns the exact size of the encoded message.
func (m *DataMessage) EncodedSize() int { return dataFixedSize + len(m.Payload) }

// AppendData appends the encoded message to dst and returns the extended
// slice. It is the hot-path encoder: a caller that reuses one scratch
// buffer (dst = scratch[:0]) encodes without allocating once the scratch
// has grown to the working packet size. It returns an error if the payload
// exceeds MaxPayload or the service is invalid; dst is returned unchanged
// on error.
func AppendData(dst []byte, m *DataMessage) ([]byte, error) {
	if len(m.Payload) > MaxPayload {
		return dst, fmt.Errorf("%w: payload %d > %d", ErrTooLarge, len(m.Payload), MaxPayload)
	}
	if !m.Service.Valid() {
		return dst, fmt.Errorf("wire: invalid service %d", uint8(m.Service))
	}
	dst = appendHeader(dst, KindData)
	dst = appendRingID(dst, m.RingID)
	dst = appendU64(dst, uint64(m.Seq))
	dst = appendU32(dst, uint32(m.PID))
	dst = appendU64(dst, uint64(m.Round))
	var flags uint8
	if m.PostToken {
		flags |= dataFlagPostToken
	}
	if m.Retrans {
		flags |= dataFlagRetrans
	}
	if m.Recovered {
		flags |= dataFlagRecovered
	}
	if m.Packed {
		flags |= dataFlagPacked
	}
	dst = appendU8(dst, flags)
	dst = appendU8(dst, uint8(m.Service))
	dst = appendU32(dst, uint32(len(m.Payload)))
	return append(dst, m.Payload...), nil
}

// Encode serializes the message into a freshly allocated, exactly sized
// buffer. Hot paths should prefer AppendData with a reused scratch.
func (m *DataMessage) Encode() ([]byte, error) {
	return AppendData(make([]byte, 0, m.EncodedSize()), m)
}

// DecodeDataInto parses a data packet into m, which the caller provides
// (typically a reused per-loop struct).
//
// Aliasing contract: m.Payload ALIASES pkt — no copy is made. The message
// is therefore only valid while pkt is; a caller that recycles pkt (e.g.
// returns it to a transport buffer pool) must either finish with m first or
// copy m.Payload before releasing. Use DecodeData for a detached message.
// All other fields are plain values and never alias pkt.
func DecodeDataInto(m *DataMessage, pkt []byte) error {
	r := reader{buf: pkt}
	r.header(KindData)
	m.RingID = decodeRingID(&r)
	m.Seq = Seq(r.u64())
	m.PID = ParticipantID(r.u32())
	m.Round = Round(r.u64())
	flags := r.u8()
	m.PostToken = flags&dataFlagPostToken != 0
	m.Retrans = flags&dataFlagRetrans != 0
	m.Recovered = flags&dataFlagRecovered != 0
	m.Packed = flags&dataFlagPacked != 0
	m.Service = Service(r.u8())
	n := r.u32()
	if n > MaxPayload {
		return fmt.Errorf("%w: payload %d > %d", ErrTooLarge, n, MaxPayload)
	}
	m.Payload = r.take(int(n))
	if err := r.finish(); err != nil {
		return err
	}
	if !m.Service.Valid() {
		return fmt.Errorf("wire: invalid service %d", uint8(m.Service))
	}
	return nil
}

// DecodeData parses a data packet. The returned message's payload is a copy
// and does not alias pkt, so it may be retained after pkt is recycled.
func DecodeData(pkt []byte) (*DataMessage, error) {
	var m DataMessage
	if err := DecodeDataInto(&m, pkt); err != nil {
		return nil, err
	}
	cp := make([]byte, len(m.Payload))
	copy(cp, m.Payload)
	m.Payload = cp
	return &m, nil
}

// MaxPacked bounds how many payloads one packed container may carry.
const MaxPacked = 256

// AppendPackedPayloads appends a packed container payload to dst: a 2-byte
// count followed by length-prefixed entries. Like AppendData it allocates
// nothing once dst's backing array has grown to the working container size;
// dst is returned unchanged on error.
func AppendPackedPayloads(dst []byte, payloads [][]byte) ([]byte, error) {
	if len(payloads) == 0 || len(payloads) > MaxPacked {
		return dst, fmt.Errorf("%w: %d packed payloads", ErrTooLarge, len(payloads))
	}
	size := 2
	for _, p := range payloads {
		size += 4 + len(p)
	}
	if size > MaxPayload {
		return dst, fmt.Errorf("%w: packed container %d > %d", ErrTooLarge, size, MaxPayload)
	}
	dst = appendU16(dst, uint16(len(payloads)))
	for _, p := range payloads {
		dst = appendU32(dst, uint32(len(p)))
		dst = append(dst, p...)
	}
	return dst, nil
}

// PackPayloads concatenates several application payloads into one packed
// container payload, freshly allocated at its exact size.
func PackPayloads(payloads [][]byte) ([]byte, error) {
	size := 2
	for _, p := range payloads {
		size += 4 + len(p)
	}
	return AppendPackedPayloads(make([]byte, 0, size), payloads)
}

// UnpackPayloads splits a packed container payload back into individual
// payloads. The returned slices alias b.
func UnpackPayloads(b []byte) ([][]byte, error) {
	r := reader{buf: b}
	n := int(r.u16())
	if n == 0 || n > MaxPacked {
		return nil, fmt.Errorf("%w: %d packed payloads", ErrTooLarge, n)
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		l := int(r.u32())
		if l > MaxPayload {
			return nil, fmt.Errorf("%w: packed entry %d bytes", ErrTooLarge, l)
		}
		out = append(out, r.take(l))
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return out, nil
}
