package wire

import "fmt"

// Token is the regular token circulated around an operational ring
// (Section III-A of the paper). It is sent point-to-point (UDP unicast in
// the real transport) from each participant to its successor.
type Token struct {
	// RingID identifies the ring configuration this token belongs to.
	RingID RingID
	// TokenSeq increments on every fresh forward of the token and is used
	// to discard duplicates created by token retransmission after a
	// suspected loss. A retransmitted token carries the same TokenSeq.
	TokenSeq uint64
	// Round is the token hop count, incremented by each participant as it
	// forwards the token. Data messages stamp the sender's Round so that
	// receivers can order token processing relative to the data stream.
	Round Round
	// Seq is the highest sequence number claimed by any participant. The
	// receiver may initiate messages with sequence numbers from Seq+1.
	// Under acceleration Seq may reference messages not yet multicast.
	Seq Seq
	// ARU (all-received-up-to) is the running estimate of the highest
	// sequence number such that every participant has received every
	// message up to and including it.
	ARU Seq
	// ARUID records the participant that last lowered ARU, or zero when
	// ARU is not being held down by anyone.
	ARUID ParticipantID
	// FCC (flow control count) is the total number of multicasts —
	// retransmissions plus new messages — sent during the last full token
	// rotation.
	FCC uint32
	// RTR lists sequence numbers whose messages some participant is
	// missing and has requested for retransmission.
	RTR []Seq
}

const tokenFixedSize = 4 + // header
	12 + // ring id
	8 + // token seq
	8 + // round
	8 + // seq
	8 + // aru
	4 + // aru id
	4 + // fcc
	4 // rtr count

// EncodedSize returns the exact size of the encoded token.
func (t *Token) EncodedSize() int { return tokenFixedSize + 8*len(t.RTR) }

// AppendToken appends the encoded token to dst and returns the extended
// slice. It fails only if the RTR list exceeds MaxRTR; dst is returned
// unchanged on error. With a reused scratch (dst = scratch[:0]) it does not
// allocate.
func AppendToken(dst []byte, t *Token) ([]byte, error) {
	if len(t.RTR) > MaxRTR {
		return dst, fmt.Errorf("%w: %d rtr entries > %d", ErrTooLarge, len(t.RTR), MaxRTR)
	}
	dst = appendHeader(dst, KindToken)
	dst = appendRingID(dst, t.RingID)
	dst = appendU64(dst, t.TokenSeq)
	dst = appendU64(dst, uint64(t.Round))
	dst = appendU64(dst, uint64(t.Seq))
	dst = appendU64(dst, uint64(t.ARU))
	dst = appendU32(dst, uint32(t.ARUID))
	dst = appendU32(dst, t.FCC)
	dst = appendU32(dst, uint32(len(t.RTR)))
	for _, s := range t.RTR {
		dst = appendU64(dst, uint64(s))
	}
	return dst, nil
}

// Encode serializes the token into a freshly allocated, exactly sized
// buffer. Hot paths should prefer AppendToken with a reused scratch.
func (t *Token) Encode() ([]byte, error) {
	return AppendToken(make([]byte, 0, t.EncodedSize()), t)
}

// DecodeTokenInto parses a token packet into t, which the caller provides.
// t.RTR's existing capacity is reused when possible (append semantics), so
// a loop that decodes into the same Token amortizes the RTR allocation to
// zero. The decoded RTR never aliases pkt. On error t is left in an
// unspecified state but its RTR capacity is preserved for reuse.
func DecodeTokenInto(t *Token, pkt []byte) error {
	r := reader{buf: pkt}
	r.header(KindToken)
	t.RingID = decodeRingID(&r)
	t.TokenSeq = r.u64()
	t.Round = Round(r.u64())
	t.Seq = Seq(r.u64())
	t.ARU = Seq(r.u64())
	t.ARUID = ParticipantID(r.u32())
	t.FCC = r.u32()
	n := r.u32()
	if n > MaxRTR {
		return fmt.Errorf("%w: %d rtr entries > %d", ErrTooLarge, n, MaxRTR)
	}
	if cap(t.RTR) < int(n) {
		// One exact-size allocation instead of append's doubling growth;
		// n is bounded, so a hostile count cannot balloon this.
		t.RTR = make([]Seq, 0, n)
	} else {
		t.RTR = t.RTR[:0]
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		t.RTR = append(t.RTR, Seq(r.u64()))
	}
	return r.finish()
}

// DecodeToken parses a token packet into a fresh Token. The returned
// token's RTR slice does not alias pkt and is nil when the list is empty.
func DecodeToken(pkt []byte) (*Token, error) {
	var t Token
	if err := DecodeTokenInto(&t, pkt); err != nil {
		return nil, err
	}
	if len(t.RTR) == 0 {
		t.RTR = nil
	}
	return &t, nil
}

// Clone returns a deep copy of the token, so that a forwarded token can be
// retained for retransmission while the engine mutates its working copy.
func (t *Token) Clone() *Token {
	return t.CloneInto(nil)
}

// CloneInto deep-copies t into dst and returns dst, reusing dst's RTR
// capacity when possible. A nil dst allocates a fresh Token, so
// `retained = tok.CloneInto(retained)` works from a nil start and stops
// allocating once the retained copy's RTR capacity covers the working set.
func (t *Token) CloneInto(dst *Token) *Token {
	if dst == nil {
		dst = new(Token)
	}
	rtr := dst.RTR[:0]
	*dst = *t
	if t.RTR == nil {
		dst.RTR = nil
	} else {
		dst.RTR = append(rtr, t.RTR...)
	}
	return dst
}
