package wire

import "fmt"

// Token is the regular token circulated around an operational ring
// (Section III-A of the paper). It is sent point-to-point (UDP unicast in
// the real transport) from each participant to its successor.
type Token struct {
	// RingID identifies the ring configuration this token belongs to.
	RingID RingID
	// TokenSeq increments on every fresh forward of the token and is used
	// to discard duplicates created by token retransmission after a
	// suspected loss. A retransmitted token carries the same TokenSeq.
	TokenSeq uint64
	// Round is the token hop count, incremented by each participant as it
	// forwards the token. Data messages stamp the sender's Round so that
	// receivers can order token processing relative to the data stream.
	Round Round
	// Seq is the highest sequence number claimed by any participant. The
	// receiver may initiate messages with sequence numbers from Seq+1.
	// Under acceleration Seq may reference messages not yet multicast.
	Seq Seq
	// ARU (all-received-up-to) is the running estimate of the highest
	// sequence number such that every participant has received every
	// message up to and including it.
	ARU Seq
	// ARUID records the participant that last lowered ARU, or zero when
	// ARU is not being held down by anyone.
	ARUID ParticipantID
	// FCC (flow control count) is the total number of multicasts —
	// retransmissions plus new messages — sent during the last full token
	// rotation.
	FCC uint32
	// RTR lists sequence numbers whose messages some participant is
	// missing and has requested for retransmission.
	RTR []Seq
}

const tokenFixedSize = 4 + // header
	12 + // ring id
	8 + // token seq
	8 + // round
	8 + // seq
	8 + // aru
	4 + // aru id
	4 + // fcc
	4 // rtr count

// EncodedSize returns the exact size of the encoded token.
func (t *Token) EncodedSize() int { return tokenFixedSize + 8*len(t.RTR) }

// Encode serializes the token. It fails only if the RTR list exceeds
// MaxRTR.
func (t *Token) Encode() ([]byte, error) {
	if len(t.RTR) > MaxRTR {
		return nil, fmt.Errorf("%w: %d rtr entries > %d", ErrTooLarge, len(t.RTR), MaxRTR)
	}
	w := newWriter(t.EncodedSize())
	w.header(KindToken)
	encodeRingID(w, t.RingID)
	w.u64(t.TokenSeq)
	w.u64(uint64(t.Round))
	w.u64(uint64(t.Seq))
	w.u64(uint64(t.ARU))
	w.u32(uint32(t.ARUID))
	w.u32(t.FCC)
	w.u32(uint32(len(t.RTR)))
	for _, s := range t.RTR {
		w.u64(uint64(s))
	}
	return w.buf, nil
}

// DecodeToken parses a token packet. The returned token's RTR slice does
// not alias pkt.
func DecodeToken(pkt []byte) (*Token, error) {
	r := reader{buf: pkt}
	r.header(KindToken)
	var t Token
	t.RingID = decodeRingID(&r)
	t.TokenSeq = r.u64()
	t.Round = Round(r.u64())
	t.Seq = Seq(r.u64())
	t.ARU = Seq(r.u64())
	t.ARUID = ParticipantID(r.u32())
	t.FCC = r.u32()
	n := r.u32()
	if n > MaxRTR {
		return nil, fmt.Errorf("%w: %d rtr entries > %d", ErrTooLarge, n, MaxRTR)
	}
	if n > 0 {
		t.RTR = make([]Seq, n)
		for i := range t.RTR {
			t.RTR[i] = Seq(r.u64())
		}
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Clone returns a deep copy of the token, so that a forwarded token can be
// retained for retransmission while the engine mutates its working copy.
func (t *Token) Clone() *Token {
	c := *t
	if t.RTR != nil {
		c.RTR = make([]Seq, len(t.RTR))
		copy(c.RTR, t.RTR)
	}
	return &c
}
