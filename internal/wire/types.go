// Package wire defines the on-the-wire message formats of the Accelerated
// Ring protocol and hand-rolled binary codecs for them.
//
// All multi-byte integers are big-endian. Every message starts with a
// four-byte header: the two magic bytes "AR", a format version byte, and a
// message kind byte. Codecs never use reflection and validate all length
// fields against hard limits so that a malformed or truncated packet can
// never cause an allocation explosion or a panic.
package wire

import (
	"errors"
	"fmt"
)

// ParticipantID uniquely identifies a protocol participant (a daemon or a
// library-embedded node). In deployments using the UDP transport the ID is
// conventionally derived from the host's IPv4 address; the protocol only
// requires uniqueness. The zero value is reserved and never identifies a
// real participant.
type ParticipantID uint32

// String renders the ID in dotted-quad style for readability in logs.
func (p ParticipantID) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(p>>24), byte(p>>16), byte(p>>8), byte(p))
}

// Seq is a message sequence number, the position of a message in the total
// order established within a single ring configuration. Sequence numbers are
// 64-bit and never wrap (unlike Totem's 32-bit wrap-around arithmetic).
type Seq uint64

// Round counts token hops. The token's Round field is incremented every time
// the token is forwarded to the next participant, and every data message
// records the Round at which its sender held the token. The two
// priority-switching methods of Section III-C of the paper compare data
// message rounds against the round of the last token a participant
// processed.
type Round uint64

// RingID identifies a ring configuration: the representative that formed the
// ring and a monotonically increasing sequence number. Two rings formed by
// different memberships always compare unequal.
type RingID struct {
	// Rep is the participant that formed the ring (the smallest ID among
	// the members, per the Totem membership algorithm).
	Rep ParticipantID
	// Seq is the ring sequence number. Membership always creates new rings
	// with larger Seq than any ring known to any member.
	Seq uint64
}

// String renders the ring ID as "rep/seq".
func (r RingID) String() string { return fmt.Sprintf("%s/%d", r.Rep, r.Seq) }

// Service selects the delivery guarantee requested for a data message.
type Service uint8

// Delivery services, in increasing order of strength. FIFO and Causal are
// provided via the Agreed machinery (the paper notes that their delivery
// latency is the same as Agreed's, whose guarantees subsume them); Safe
// delivery additionally guarantees stability: a message is delivered only
// once every member of the configuration has received it.
const (
	ServiceFIFO Service = iota + 1
	ServiceCausal
	ServiceAgreed
	ServiceSafe
)

// String implements fmt.Stringer.
func (s Service) String() string {
	switch s {
	case ServiceFIFO:
		return "fifo"
	case ServiceCausal:
		return "causal"
	case ServiceAgreed:
		return "agreed"
	case ServiceSafe:
		return "safe"
	default:
		return fmt.Sprintf("service(%d)", uint8(s))
	}
}

// Valid reports whether s is one of the defined services.
func (s Service) Valid() bool { return s >= ServiceFIFO && s <= ServiceSafe }

// RequiresSafe reports whether the service demands stability before
// delivery.
func (s Service) RequiresSafe() bool { return s == ServiceSafe }

// Kind discriminates the message types exchanged by the protocol.
type Kind uint8

// Message kinds.
const (
	KindData Kind = iota + 1
	KindToken
	KindJoin
	KindCommit
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindToken:
		return "token"
	case KindJoin:
		return "join"
	case KindCommit:
		return "commit"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Format constants and hard limits enforced by the codecs.
const (
	// Version is the wire format version emitted and accepted by this
	// implementation.
	Version = 1

	// MaxPayload bounds a data message payload. It matches the largest
	// UDP datagram the paper's large-message experiments use (message
	// fragmentation/reassembly is left to the kernel, per Section IV-A3)
	// less room for protocol headers.
	MaxPayload = 64*1024 - 512

	// MaxRTR bounds the number of retransmission requests carried by one
	// token.
	MaxRTR = 4096

	// MaxMembers bounds ring membership. Token rings degrade well before
	// this; the bound only protects the codecs.
	MaxMembers = 1024

	// MaxGroups bounds the number of destination groups of one multi-group
	// multicast.
	MaxGroups = 64

	// MaxGroupName bounds the length of a group name, mirroring Spread's
	// generous descriptive group names.
	MaxGroupName = 128
)

var (
	magic0 = byte('A')
	magic1 = byte('R')
)

// Codec errors.
var (
	// ErrTruncated reports a packet shorter than its declared contents.
	ErrTruncated = errors.New("wire: truncated packet")
	// ErrBadMagic reports a packet that does not begin with the protocol
	// magic bytes.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrBadVersion reports an unsupported format version.
	ErrBadVersion = errors.New("wire: unsupported version")
	// ErrBadKind reports an unknown message kind, or a decode call for a
	// kind other than the packet's.
	ErrBadKind = errors.New("wire: unexpected message kind")
	// ErrTooLarge reports a length field exceeding its hard limit.
	ErrTooLarge = errors.New("wire: length field exceeds limit")
)
