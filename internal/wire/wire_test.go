package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParticipantIDString(t *testing.T) {
	if got, want := ParticipantID(0x0a000102).String(), "10.0.1.2"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestRingIDString(t *testing.T) {
	id := RingID{Rep: 0x01020304, Seq: 42}
	if got, want := id.String(), "1.2.3.4/42"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestServiceValid(t *testing.T) {
	for _, s := range []Service{ServiceFIFO, ServiceCausal, ServiceAgreed, ServiceSafe} {
		if !s.Valid() {
			t.Errorf("Service %v should be valid", s)
		}
	}
	for _, s := range []Service{0, 5, 200} {
		if s.Valid() {
			t.Errorf("Service %d should be invalid", uint8(s))
		}
	}
}

func TestServiceRequiresSafe(t *testing.T) {
	if ServiceAgreed.RequiresSafe() {
		t.Error("agreed must not require safe")
	}
	if !ServiceSafe.RequiresSafe() {
		t.Error("safe must require safe")
	}
}

func TestServiceStrings(t *testing.T) {
	cases := map[Service]string{
		ServiceFIFO:   "fifo",
		ServiceCausal: "causal",
		ServiceAgreed: "agreed",
		ServiceSafe:   "safe",
		Service(99):   "service(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Service(%d).String() = %q, want %q", uint8(s), got, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindData:   "data",
		KindToken:  "token",
		KindJoin:   "join",
		KindCommit: "commit",
		Kind(77):   "kind(77)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
}

func sampleData() *DataMessage {
	return &DataMessage{
		RingID:    RingID{Rep: 3, Seq: 17},
		Seq:       991,
		PID:       3,
		Round:     55,
		PostToken: true,
		Retrans:   false,
		Recovered: true,
		Service:   ServiceSafe,
		Payload:   []byte("hello total order"),
	}
}

func TestDataRoundtrip(t *testing.T) {
	m := sampleData()
	pkt, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(pkt) != m.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(pkt), m.EncodedSize())
	}
	got, err := DecodeData(pkt)
	if err != nil {
		t.Fatalf("DecodeData: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestDataRoundtripEmptyPayload(t *testing.T) {
	m := &DataMessage{RingID: RingID{Rep: 1, Seq: 1}, Seq: 1, PID: 1, Service: ServiceAgreed}
	pkt, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeData(pkt)
	if err != nil {
		t.Fatalf("DecodeData: %v", err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload = %v, want empty", got.Payload)
	}
}

func TestDataPayloadDoesNotAliasPacket(t *testing.T) {
	m := sampleData()
	pkt, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeData(pkt)
	if err != nil {
		t.Fatalf("DecodeData: %v", err)
	}
	for i := range pkt {
		pkt[i] = 0xFF
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("decoded payload aliases the packet buffer")
	}
}

func TestDataEncodeRejectsOversizedPayload(t *testing.T) {
	m := sampleData()
	m.Payload = make([]byte, MaxPayload+1)
	if _, err := m.Encode(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Encode err = %v, want ErrTooLarge", err)
	}
}

func TestDataEncodeRejectsInvalidService(t *testing.T) {
	m := sampleData()
	m.Service = 0
	if _, err := m.Encode(); err == nil {
		t.Fatal("Encode accepted invalid service")
	}
}

func TestDataDecodeRejectsInvalidService(t *testing.T) {
	m := sampleData()
	pkt, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Service byte sits right after flags; locate it from the layout.
	pkt[dataFixedSize-5] = 0
	if _, err := DecodeData(pkt); err == nil {
		t.Fatal("DecodeData accepted invalid service")
	}
}

func TestDataDecodeTruncated(t *testing.T) {
	pkt, err := sampleData().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for _, n := range []int{0, 1, 3, 4, 10, dataFixedSize - 1, len(pkt) - 1} {
		if _, err := DecodeData(pkt[:n]); err == nil {
			t.Errorf("DecodeData accepted %d-byte prefix", n)
		}
	}
}

func TestDataDecodeTrailingGarbage(t *testing.T) {
	pkt, err := sampleData().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	pkt = append(pkt, 0xAB)
	if _, err := DecodeData(pkt); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want trailing-bytes error", err)
	}
}

func TestDecodeWrongKind(t *testing.T) {
	pkt, err := sampleToken().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := DecodeData(pkt); !errors.Is(err, ErrBadKind) {
		t.Fatalf("DecodeData(token) err = %v, want ErrBadKind", err)
	}
}

func TestDecodeBadMagicAndVersion(t *testing.T) {
	pkt, err := sampleData().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	bad := append([]byte(nil), pkt...)
	bad[0] = 'X'
	if _, err := DecodeData(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	bad = append([]byte(nil), pkt...)
	bad[2] = 200
	if _, err := DecodeData(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func sampleToken() *Token {
	return &Token{
		RingID:   RingID{Rep: 1, Seq: 8},
		TokenSeq: 12345,
		Round:    678,
		Seq:      90210,
		ARU:      90000,
		ARUID:    4,
		FCC:      192,
		RTR:      []Seq{90001, 90002, 90100},
	}
}

func TestTokenRoundtrip(t *testing.T) {
	tok := sampleToken()
	pkt, err := tok.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(pkt) != tok.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(pkt), tok.EncodedSize())
	}
	got, err := DecodeToken(pkt)
	if err != nil {
		t.Fatalf("DecodeToken: %v", err)
	}
	if !reflect.DeepEqual(tok, got) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, tok)
	}
}

func TestTokenRoundtripEmptyRTR(t *testing.T) {
	tok := sampleToken()
	tok.RTR = nil
	pkt, err := tok.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeToken(pkt)
	if err != nil {
		t.Fatalf("DecodeToken: %v", err)
	}
	if len(got.RTR) != 0 {
		t.Fatalf("RTR = %v, want empty", got.RTR)
	}
}

func TestTokenEncodeRejectsOversizedRTR(t *testing.T) {
	tok := sampleToken()
	tok.RTR = make([]Seq, MaxRTR+1)
	if _, err := tok.Encode(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestTokenDecodeRejectsHugeRTRCount(t *testing.T) {
	tok := sampleToken()
	tok.RTR = nil
	pkt, err := tok.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Overwrite the trailing rtr count with a huge value; the decoder must
	// reject it rather than allocate.
	pkt[len(pkt)-4] = 0xFF
	pkt[len(pkt)-3] = 0xFF
	pkt[len(pkt)-2] = 0xFF
	pkt[len(pkt)-1] = 0xFF
	if _, err := DecodeToken(pkt); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestTokenClone(t *testing.T) {
	tok := sampleToken()
	c := tok.Clone()
	if !reflect.DeepEqual(tok, c) {
		t.Fatal("clone differs from original")
	}
	c.RTR[0] = 7
	if tok.RTR[0] == 7 {
		t.Fatal("clone shares RTR storage with original")
	}
}

func sampleJoin() *JoinMessage {
	return &JoinMessage{
		Sender:  7,
		ProcSet: []ParticipantID{1, 2, 7},
		FailSet: []ParticipantID{4},
		RingSeq: 40,
	}
}

func TestJoinRoundtrip(t *testing.T) {
	j := sampleJoin()
	pkt, err := j.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(pkt) != j.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(pkt), j.EncodedSize())
	}
	got, err := DecodeJoin(pkt)
	if err != nil {
		t.Fatalf("DecodeJoin: %v", err)
	}
	if !reflect.DeepEqual(j, got) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, j)
	}
}

func TestJoinRoundtripEmptySets(t *testing.T) {
	j := &JoinMessage{Sender: 1, RingSeq: 2}
	pkt, err := j.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeJoin(pkt)
	if err != nil {
		t.Fatalf("DecodeJoin: %v", err)
	}
	if len(got.ProcSet) != 0 || len(got.FailSet) != 0 {
		t.Fatalf("sets = %v/%v, want empty", got.ProcSet, got.FailSet)
	}
}

func sampleCommit() *CommitToken {
	return &CommitToken{
		RingID:   RingID{Rep: 1, Seq: 44},
		Rotation: 2,
		Members: []CommitMember{
			{ID: 1, OldRingID: RingID{Rep: 1, Seq: 40}, MyARU: 10, HighSeq: 12, HighDelivered: 9, Filled: true},
			{ID: 2, OldRingID: RingID{Rep: 2, Seq: 38}, MyARU: 0, HighSeq: 0, HighDelivered: 0, Filled: false},
		},
	}
}

func TestCommitRoundtrip(t *testing.T) {
	c := sampleCommit()
	pkt, err := c.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(pkt) != c.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(pkt), c.EncodedSize())
	}
	got, err := DecodeCommit(pkt)
	if err != nil {
		t.Fatalf("DecodeCommit: %v", err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestCommitClone(t *testing.T) {
	c := sampleCommit()
	cl := c.Clone()
	if !reflect.DeepEqual(c, cl) {
		t.Fatal("clone differs from original")
	}
	cl.Members[0].MyARU = 999
	if c.Members[0].MyARU == 999 {
		t.Fatal("clone shares member storage with original")
	}
}

func TestPeekKind(t *testing.T) {
	dpkt, err := sampleData().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	tpkt, err := sampleToken().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	jpkt, err := sampleJoin().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cpkt, err := sampleCommit().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := []struct {
		pkt  []byte
		want Kind
	}{{dpkt, KindData}, {tpkt, KindToken}, {jpkt, KindJoin}, {cpkt, KindCommit}}
	for _, c := range cases {
		got, err := PeekKind(c.pkt)
		if err != nil {
			t.Fatalf("PeekKind(%s): %v", c.want, err)
		}
		if got != c.want {
			t.Errorf("PeekKind = %v, want %v", got, c.want)
		}
	}
	if _, err := PeekKind([]byte{'A', 'R', Version}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short packet: err = %v, want ErrTruncated", err)
	}
	if _, err := PeekKind([]byte{'X', 'R', Version, byte(KindData)}); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: err = %v, want ErrBadMagic", err)
	}
	if _, err := PeekKind([]byte{'A', 'R', Version, 200}); !errors.Is(err, ErrBadKind) {
		t.Errorf("bad kind: err = %v, want ErrBadKind", err)
	}
}

// TestDecodeDataNeverPanics feeds random garbage into the decoders. Whatever
// the input, decoding must return rather than panic, and an error for
// non-packets.
func TestDecodersNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(256)
		pkt := make([]byte, n)
		rng.Read(pkt)
		// Half the time, make the header plausible so body parsing runs.
		if i%2 == 0 && n >= 4 {
			pkt[0], pkt[1], pkt[2] = magic0, magic1, Version
			pkt[3] = byte(1 + rng.Intn(4))
		}
		_, _ = DecodeData(pkt)
		_, _ = DecodeToken(pkt)
		_, _ = DecodeJoin(pkt)
		_, _ = DecodeCommit(pkt)
	}
}

// quickData adapts DataMessage for testing/quick by constraining the fields
// the codec validates.
func quickData(ringRep, pid uint32, ringSeq, seq, round uint64, post, retrans, recovered bool, svc uint8, payload []byte) *DataMessage {
	if len(payload) > MaxPayload {
		payload = payload[:MaxPayload]
	}
	return &DataMessage{
		RingID:    RingID{Rep: ParticipantID(ringRep), Seq: ringSeq},
		Seq:       Seq(seq),
		PID:       ParticipantID(pid),
		Round:     Round(round),
		PostToken: post,
		Retrans:   retrans,
		Recovered: recovered,
		Service:   Service(svc%4) + ServiceFIFO,
		Payload:   payload,
	}
}

func TestQuickDataRoundtrip(t *testing.T) {
	f := func(ringRep, pid uint32, ringSeq, seq, round uint64, post, retrans, recovered bool, svc uint8, payload []byte) bool {
		m := quickData(ringRep, pid, ringSeq, seq, round, post, retrans, recovered, svc, payload)
		pkt, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeData(pkt)
		if err != nil {
			return false
		}
		if len(m.Payload) == 0 {
			// Decoder normalizes empty payloads to nil-or-empty; compare
			// lengths instead of identity.
			return got.Seq == m.Seq && len(got.Payload) == 0
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTokenRoundtrip(t *testing.T) {
	f := func(rep uint32, ringSeq, tokSeq, round, seq, aru uint64, aruID uint32, fcc uint32, rtrRaw []uint64) bool {
		if len(rtrRaw) > MaxRTR {
			rtrRaw = rtrRaw[:MaxRTR]
		}
		tok := &Token{
			RingID:   RingID{Rep: ParticipantID(rep), Seq: ringSeq},
			TokenSeq: tokSeq,
			Round:    Round(round),
			Seq:      Seq(seq),
			ARU:      Seq(aru),
			ARUID:    ParticipantID(aruID),
			FCC:      fcc,
		}
		for _, v := range rtrRaw {
			tok.RTR = append(tok.RTR, Seq(v))
		}
		pkt, err := tok.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeToken(pkt)
		if err != nil {
			return false
		}
		if len(tok.RTR) == 0 {
			return got.TokenSeq == tok.TokenSeq && len(got.RTR) == 0
		}
		return reflect.DeepEqual(tok, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJoinRoundtrip(t *testing.T) {
	f := func(sender uint32, ringSeq uint64, procRaw, failRaw []uint32) bool {
		if len(procRaw) > MaxMembers {
			procRaw = procRaw[:MaxMembers]
		}
		if len(failRaw) > MaxMembers {
			failRaw = failRaw[:MaxMembers]
		}
		j := &JoinMessage{Sender: ParticipantID(sender), RingSeq: ringSeq}
		for _, v := range procRaw {
			j.ProcSet = append(j.ProcSet, ParticipantID(v))
		}
		for _, v := range failRaw {
			j.FailSet = append(j.FailSet, ParticipantID(v))
		}
		pkt, err := j.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeJoin(pkt)
		if err != nil {
			return false
		}
		return got.Sender == j.Sender && got.RingSeq == j.RingSeq &&
			len(got.ProcSet) == len(j.ProcSet) && len(got.FailSet) == len(j.FailSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackRoundtrip(t *testing.T) {
	in := [][]byte{[]byte("a"), {}, []byte("third payload")}
	packed, err := PackPayloads(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnpackPayloads(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("unpacked %d, want %d", len(out), len(in))
	}
	for i := range in {
		if string(out[i]) != string(in[i]) {
			t.Fatalf("entry %d = %q, want %q", i, out[i], in[i])
		}
	}
}

func TestPackPayloadsLimits(t *testing.T) {
	if _, err := PackPayloads(nil); err == nil {
		t.Fatal("packed zero payloads")
	}
	too := make([][]byte, MaxPacked+1)
	for i := range too {
		too[i] = []byte{1}
	}
	if _, err := PackPayloads(too); err == nil {
		t.Fatal("packed more than MaxPacked")
	}
	if _, err := PackPayloads([][]byte{make([]byte, MaxPayload)}); err == nil {
		t.Fatal("packed container exceeding MaxPayload")
	}
}

func TestUnpackPayloadsRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                 // empty
		{0, 0},             // zero count
		{0, 1},             // count without entry
		{0, 1, 0, 0, 0, 9}, // entry length beyond buffer
		{0xFF, 0xFF},       // huge count
	}
	for _, c := range cases {
		if _, err := UnpackPayloads(c); err == nil {
			t.Errorf("UnpackPayloads(%v) succeeded", c)
		}
	}
}

func TestUnpackTrailingGarbage(t *testing.T) {
	packed, err := PackPayloads([][]byte{[]byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	packed = append(packed, 0xAA)
	if _, err := UnpackPayloads(packed); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestDataPackedFlagRoundtrip(t *testing.T) {
	m := sampleData()
	m.Packed = true
	pkt, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeData(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Packed {
		t.Fatal("Packed flag lost in roundtrip")
	}
}
