package wire

import "fmt"

// The write side of the codecs is append-style: every helper takes the
// destination slice and returns the extended slice, exactly like the
// standard library's binary.BigEndian.AppendUint64. Encoding is infallible
// once sizes are validated, so no error plumbing is needed here, and a
// caller that reuses one scratch buffer across packets encodes without
// allocating (see AppendData, AppendToken, AppendJoin, AppendCommit).

func appendU8(b []byte, v uint8) []byte { return append(b, v) }

func appendBool(b []byte, v bool) []byte { return append(b, boolByte(v)) }

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendHeader(b []byte, k Kind) []byte {
	return append(b, magic0, magic1, Version, byte(k))
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// reader consumes big-endian values from a byte slice, remembering the
// first error. After an error every subsequent read returns zero values, so
// decode functions can read unconditionally and check err once.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.remaining() < n {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// bytesCopy reads n bytes and returns a copy, so decoded messages do not
// alias the (reused) receive buffer. The zero-copy decoders (DecodeDataInto)
// use take directly instead and document the aliasing.
func (r *reader) bytesCopy(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// header validates the packet header and that the packet carries kind k.
func (r *reader) header(k Kind) {
	b := r.take(4)
	if b == nil {
		return
	}
	if b[0] != magic0 || b[1] != magic1 {
		r.fail(ErrBadMagic)
		return
	}
	if b[2] != Version {
		r.fail(fmt.Errorf("%w: %d", ErrBadVersion, b[2]))
		return
	}
	if Kind(b[3]) != k {
		r.fail(fmt.Errorf("%w: got %s, want %s", ErrBadKind, Kind(b[3]), k))
	}
}

// finish returns the accumulated error, flagging trailing garbage as
// truncation in reverse (a longer packet than the message describes).
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrTruncated, r.remaining())
	}
	return nil
}

// PeekKind inspects a packet's header and returns its message kind without
// decoding the body. Transports use it to route packets.
func PeekKind(pkt []byte) (Kind, error) {
	if len(pkt) < 4 {
		return 0, ErrTruncated
	}
	if pkt[0] != magic0 || pkt[1] != magic1 {
		return 0, ErrBadMagic
	}
	if pkt[2] != Version {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, pkt[2])
	}
	k := Kind(pkt[3])
	if k < KindData || k > KindCommit {
		return 0, fmt.Errorf("%w: %d", ErrBadKind, uint8(k))
	}
	return k, nil
}

func appendRingID(b []byte, id RingID) []byte {
	b = appendU32(b, uint32(id.Rep))
	return appendU64(b, id.Seq)
}

func decodeRingID(r *reader) RingID {
	return RingID{Rep: ParticipantID(r.u32()), Seq: r.u64()}
}
