package wire

import (
	"testing"
)

// These are the allocation gates for the steady-state hot path: encoding a
// data or token frame into a reused scratch must not allocate at all, and
// the zero-copy decoders must stay at or below one allocation per packet.
// If a future change reintroduces per-packet garbage here, these tests —
// not a profiler session weeks later — are meant to catch it.

func allocTestData() *DataMessage {
	payload := make([]byte, 1350)
	for i := range payload {
		payload[i] = byte(i)
	}
	return &DataMessage{
		RingID:  RingID{Rep: 3, Seq: 9},
		Seq:     101,
		PID:     7,
		Round:   42,
		Service: ServiceAgreed,
		Payload: payload,
	}
}

func allocTestToken() *Token {
	return &Token{
		RingID:   RingID{Rep: 3, Seq: 9},
		TokenSeq: 77,
		Round:    42,
		Seq:      120,
		ARU:      95,
		ARUID:    2,
		FCC:      14,
		RTR:      []Seq{96, 97, 103},
	}
}

func TestAppendDataAllocFree(t *testing.T) {
	m := allocTestData()
	scratch := make([]byte, 0, m.EncodedSize())
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := AppendData(scratch[:0], m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendData with warm scratch: %.1f allocs/op, want 0", allocs)
	}
}

func TestAppendTokenAllocFree(t *testing.T) {
	tok := allocTestToken()
	scratch := make([]byte, 0, tok.EncodedSize())
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := AppendToken(scratch[:0], tok); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendToken with warm scratch: %.1f allocs/op, want 0", allocs)
	}
}

func TestAppendPackedPayloadsAllocFree(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	scratch := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := AppendPackedPayloads(scratch[:0], payloads); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendPackedPayloads with warm scratch: %.1f allocs/op, want 0", allocs)
	}
}

func TestDecodeDataIntoAllocFree(t *testing.T) {
	pkt, err := allocTestData().Encode()
	if err != nil {
		t.Fatal(err)
	}
	var m DataMessage
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeDataInto(&m, pkt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("DecodeDataInto: %.1f allocs/op, want <= 1", allocs)
	}
}

func TestDecodeTokenIntoAllocFree(t *testing.T) {
	pkt, err := allocTestToken().Encode()
	if err != nil {
		t.Fatal(err)
	}
	var tok Token
	if err := DecodeTokenInto(&tok, pkt); err != nil { // warm the RTR capacity
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeTokenInto(&tok, pkt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("DecodeTokenInto with warm RTR: %.1f allocs/op, want <= 1", allocs)
	}
}

func TestCloneIntoAllocFree(t *testing.T) {
	tok := allocTestToken()
	retained := tok.CloneInto(nil) // warm the destination's RTR capacity
	allocs := testing.AllocsPerRun(200, func() {
		retained = tok.CloneInto(retained)
	})
	if allocs != 0 {
		t.Fatalf("CloneInto with warm destination: %.1f allocs/op, want 0", allocs)
	}
	if retained.TokenSeq != tok.TokenSeq || len(retained.RTR) != len(tok.RTR) {
		t.Fatal("CloneInto produced a wrong copy")
	}
}

// The detaching decoders are allowed their copies, but the budget is still
// bounded: one for the message payload (DecodeData) or RTR list
// (DecodeToken), plus the struct itself.
func TestDetachingDecodersBoundedAllocs(t *testing.T) {
	dataPkt, err := allocTestData().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeData(dataPkt); err != nil {
			t.Fatal(err)
		}
	}); allocs > 2 {
		t.Fatalf("DecodeData: %.1f allocs/op, want <= 2", allocs)
	}
	tokPkt, err := allocTestToken().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeToken(tokPkt); err != nil {
			t.Fatal(err)
		}
	}); allocs > 2 {
		t.Fatalf("DecodeToken: %.1f allocs/op, want <= 2", allocs)
	}
}
