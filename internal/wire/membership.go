package wire

import "fmt"

// JoinMessage is multicast by a participant in the Gather membership state.
// It advertises the set of participants the sender currently considers
// reachable (ProcSet) and the set it has declared failed (FailSet).
// Consensus is reached when every live member of a participant's ProcSet has
// sent a JoinMessage with identical sets.
type JoinMessage struct {
	// Sender is the participant that multicast this join.
	Sender ParticipantID
	// ProcSet is the set of participants the sender proposes for the new
	// membership, in ascending ID order.
	ProcSet []ParticipantID
	// FailSet is the subset of participants the sender has declared
	// failed (e.g. for not answering joins before the consensus timeout),
	// in ascending ID order.
	FailSet []ParticipantID
	// RingSeq is the sequence number of the sender's current (old) ring,
	// so that the new ring's sequence number can exceed every old one.
	RingSeq uint64
}

const joinFixedSize = 4 + 4 + 8 + 2 + 2

// EncodedSize returns the exact size of the encoded join.
func (j *JoinMessage) EncodedSize() int {
	return joinFixedSize + 4*(len(j.ProcSet)+len(j.FailSet))
}

// AppendJoin appends the encoded join message to dst and returns the
// extended slice; dst is returned unchanged on error.
func AppendJoin(dst []byte, j *JoinMessage) ([]byte, error) {
	if len(j.ProcSet) > MaxMembers || len(j.FailSet) > MaxMembers {
		return dst, fmt.Errorf("%w: join sets exceed %d members", ErrTooLarge, MaxMembers)
	}
	dst = appendHeader(dst, KindJoin)
	dst = appendU32(dst, uint32(j.Sender))
	dst = appendU64(dst, j.RingSeq)
	dst = appendU16(dst, uint16(len(j.ProcSet)))
	dst = appendU16(dst, uint16(len(j.FailSet)))
	for _, p := range j.ProcSet {
		dst = appendU32(dst, uint32(p))
	}
	for _, p := range j.FailSet {
		dst = appendU32(dst, uint32(p))
	}
	return dst, nil
}

// Encode serializes the join message.
func (j *JoinMessage) Encode() ([]byte, error) {
	return AppendJoin(make([]byte, 0, j.EncodedSize()), j)
}

// DecodeJoin parses a join packet.
func DecodeJoin(pkt []byte) (*JoinMessage, error) {
	r := reader{buf: pkt}
	r.header(KindJoin)
	var j JoinMessage
	j.Sender = ParticipantID(r.u32())
	j.RingSeq = r.u64()
	np := int(r.u16())
	nf := int(r.u16())
	if np > MaxMembers || nf > MaxMembers {
		return nil, fmt.Errorf("%w: join sets exceed %d members", ErrTooLarge, MaxMembers)
	}
	j.ProcSet = decodeIDs(&r, np)
	j.FailSet = decodeIDs(&r, nf)
	if err := r.finish(); err != nil {
		return nil, err
	}
	return &j, nil
}

func decodeIDs(r *reader, n int) []ParticipantID {
	if n == 0 {
		return nil
	}
	ids := make([]ParticipantID, n)
	for i := range ids {
		ids[i] = ParticipantID(r.u32())
	}
	return ids
}

// CommitMember is one member's entry in a commit token. The member fills in
// its old-ring state on the commit token's first rotation so that, by the
// end of the second rotation, every member knows the recovery obligations of
// every other member.
type CommitMember struct {
	// ID is the member's participant ID.
	ID ParticipantID
	// OldRingID is the ring the member belonged to before this membership
	// change.
	OldRingID RingID
	// MyARU is the member's local all-received-up-to in its old ring.
	MyARU Seq
	// HighSeq is the highest sequence number the member has received in
	// its old ring.
	HighSeq Seq
	// HighDelivered is the highest sequence number the member has
	// delivered in its old ring.
	HighDelivered Seq
	// Filled reports whether the member has populated this entry yet.
	Filled bool
}

// CommitToken forms a proposed new ring. The representative (the smallest
// participant ID in the agreed membership) creates it and sends it around
// the proposed ring twice: the first rotation collects every member's
// old-ring state; the second rotation confirms that every member saw the
// complete information and shifts members to the Recovery state.
type CommitToken struct {
	// RingID is the identifier of the new ring being formed.
	RingID RingID
	// Members lists the new ring's members in ring order (ascending ID,
	// representative first).
	Members []CommitMember
	// Rotation is 1 during the collection rotation and 2 during the
	// confirmation rotation.
	Rotation uint8
}

const commitFixedSize = 4 + 12 + 1 + 2

const commitMemberSize = 4 + 12 + 8 + 8 + 8 + 1

// EncodedSize returns the exact size of the encoded commit token.
func (c *CommitToken) EncodedSize() int {
	return commitFixedSize + commitMemberSize*len(c.Members)
}

// AppendCommit appends the encoded commit token to dst and returns the
// extended slice; dst is returned unchanged on error.
func AppendCommit(dst []byte, c *CommitToken) ([]byte, error) {
	if len(c.Members) > MaxMembers {
		return dst, fmt.Errorf("%w: %d members > %d", ErrTooLarge, len(c.Members), MaxMembers)
	}
	dst = appendHeader(dst, KindCommit)
	dst = appendRingID(dst, c.RingID)
	dst = appendU8(dst, c.Rotation)
	dst = appendU16(dst, uint16(len(c.Members)))
	for i := range c.Members {
		m := &c.Members[i]
		dst = appendU32(dst, uint32(m.ID))
		dst = appendRingID(dst, m.OldRingID)
		dst = appendU64(dst, uint64(m.MyARU))
		dst = appendU64(dst, uint64(m.HighSeq))
		dst = appendU64(dst, uint64(m.HighDelivered))
		dst = appendBool(dst, m.Filled)
	}
	return dst, nil
}

// Encode serializes the commit token.
func (c *CommitToken) Encode() ([]byte, error) {
	return AppendCommit(make([]byte, 0, c.EncodedSize()), c)
}

// DecodeCommit parses a commit token packet.
func DecodeCommit(pkt []byte) (*CommitToken, error) {
	r := reader{buf: pkt}
	r.header(KindCommit)
	var c CommitToken
	c.RingID = decodeRingID(&r)
	c.Rotation = r.u8()
	n := int(r.u16())
	if n > MaxMembers {
		return nil, fmt.Errorf("%w: %d members > %d", ErrTooLarge, n, MaxMembers)
	}
	if n > 0 {
		c.Members = make([]CommitMember, n)
		for i := range c.Members {
			m := &c.Members[i]
			m.ID = ParticipantID(r.u32())
			m.OldRingID = decodeRingID(&r)
			m.MyARU = Seq(r.u64())
			m.HighSeq = Seq(r.u64())
			m.HighDelivered = Seq(r.u64())
			m.Filled = r.bool()
		}
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Clone returns a deep copy of the commit token.
func (c *CommitToken) Clone() *CommitToken {
	out := *c
	if c.Members != nil {
		out.Members = make([]CommitMember, len(c.Members))
		copy(out.Members, c.Members)
	}
	return &out
}
