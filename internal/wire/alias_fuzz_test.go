package wire

import (
	"bytes"
	"testing"
)

// FuzzPooledBufferAliasing is the aliasing contract's fuzz target. The
// buffer pool makes a new class of bug possible: code keeps a slice of a
// packet after the buffer is recycled, and a later packet silently
// overwrites the retained data. This target simulates exactly that — decode
// from a buffer, then scribble over the buffer as a pool reuse would — and
// asserts the detaching decoders (DecodeData, DecodeToken, DecodeJoin,
// DecodeCommit) are unaffected, while DecodeDataInto's payload DOES alias
// the buffer as documented.
func FuzzPooledBufferAliasing(f *testing.F) {
	seedPackets(f)
	f.Fuzz(func(t *testing.T, orig []byte) {
		// The "pooled buffer": decode from a private copy of the input so
		// we can overwrite it afterwards.
		buf := make([]byte, len(orig))
		copy(buf, orig)

		kind, err := PeekKind(buf)
		if err != nil {
			return
		}
		switch kind {
		case KindData:
			m, err := DecodeData(buf)
			if err != nil {
				return
			}
			// The zero-copy variant must alias the buffer (that is its
			// contract and why the detached copy exists at all).
			var zc DataMessage
			if err := DecodeDataInto(&zc, buf); err != nil {
				t.Fatalf("DecodeDataInto failed after DecodeData succeeded: %v", err)
			}
			if len(zc.Payload) > 0 && &zc.Payload[0] != &buf[len(buf)-len(zc.Payload)] {
				t.Fatal("DecodeDataInto payload does not alias the packet buffer")
			}
			before, err := m.Encode()
			if err != nil {
				t.Fatalf("decoded message does not re-encode: %v", err)
			}
			scribble(buf)
			after, err := m.Encode()
			if err != nil {
				t.Fatalf("re-encode failed after buffer recycle: %v", err)
			}
			if !bytes.Equal(before, after) {
				t.Fatal("DecodeData result changed when the source buffer was recycled")
			}
		case KindToken:
			tok, err := DecodeToken(buf)
			if err != nil {
				return
			}
			before, err := tok.Encode()
			if err != nil {
				t.Fatalf("decoded token does not re-encode: %v", err)
			}
			scribble(buf)
			after, err := tok.Encode()
			if err != nil {
				t.Fatalf("re-encode failed after buffer recycle: %v", err)
			}
			if !bytes.Equal(before, after) {
				t.Fatal("DecodeToken result changed when the source buffer was recycled")
			}
		case KindJoin:
			j, err := DecodeJoin(buf)
			if err != nil {
				return
			}
			before, err := j.Encode()
			if err != nil {
				t.Fatalf("decoded join does not re-encode: %v", err)
			}
			scribble(buf)
			after, err := j.Encode()
			if err != nil {
				t.Fatalf("re-encode failed after buffer recycle: %v", err)
			}
			if !bytes.Equal(before, after) {
				t.Fatal("DecodeJoin result changed when the source buffer was recycled")
			}
		case KindCommit:
			ct, err := DecodeCommit(buf)
			if err != nil {
				return
			}
			before, err := ct.Encode()
			if err != nil {
				t.Fatalf("decoded commit token does not re-encode: %v", err)
			}
			scribble(buf)
			after, err := ct.Encode()
			if err != nil {
				t.Fatalf("re-encode failed after buffer recycle: %v", err)
			}
			if !bytes.Equal(before, after) {
				t.Fatal("DecodeCommit result changed when the source buffer was recycled")
			}
		}
	})
}

// scribble overwrites a recycled buffer the way a reused pool buffer would
// be: completely, with a recognizable poison pattern.
func scribble(b []byte) {
	for i := range b {
		b[i] = 0xA5
	}
}
