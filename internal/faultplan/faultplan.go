// Package faultplan defines seeded, deterministic fault programs for the
// protocol's three execution substrates: the virtual-time cluster harness
// in internal/core, the discrete-event network simulator in
// internal/netsim, and the in-memory transport hub in
// internal/transport/memnet.
//
// A Plan is a declarative schedule: link faults (loss, duplication, extra
// delay) active over time windows, plus node events (crash, restart,
// partition, heal) at fixed times. An Injector evaluates the plan at
// runtime: every packet send asks Decide for a verdict, and every decision
// is drawn from a per-link random stream derived from the plan seed, so
// two runs that present the same packet sequence receive the identical
// fault sequence — a failing chaos run is reproduced by its seed alone.
package faultplan

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"accelring/internal/wire"
)

// KindMask selects which packet kinds a link fault applies to. The zero
// value matches every kind.
type KindMask uint8

// Packet kind bits.
const (
	MaskData KindMask = 1 << iota
	MaskToken
	MaskJoin
	MaskCommit
)

// MaskOf returns the mask bit for a wire message kind.
func MaskOf(k wire.Kind) KindMask {
	switch k {
	case wire.KindData:
		return MaskData
	case wire.KindToken:
		return MaskToken
	case wire.KindJoin:
		return MaskJoin
	case wire.KindCommit:
		return MaskCommit
	default:
		return 0
	}
}

// matches reports whether the mask selects kind (zero mask selects all).
func (m KindMask) matches(k wire.Kind) bool {
	return m == 0 || m&MaskOf(k) != 0
}

// LinkFault is a probabilistic fault active on matching links during a
// time window. A zero From or To matches any sender or receiver.
type LinkFault struct {
	// From and To select the link; zero means any participant.
	From, To wire.ParticipantID
	// Kinds selects affected packet kinds; zero means all.
	Kinds KindMask
	// Start and End bound the active window. A zero End means the fault
	// never expires.
	Start, End time.Duration
	// Loss is the probability a matching packet is dropped.
	Loss float64
	// Dup is the probability a matching packet is delivered twice.
	Dup float64
	// DelayProb is the probability a matching packet is delayed by an
	// extra Delay, reordering it behind packets sent after it.
	DelayProb float64
	// Delay is the extra delivery delay applied with DelayProb.
	Delay time.Duration
}

// active reports whether the fault window covers time t.
func (f *LinkFault) active(t time.Duration) bool {
	return t >= f.Start && (f.End == 0 || t < f.End)
}

// matchesLink reports whether the fault applies to the (from, to) link.
func (f *LinkFault) matchesLink(from, to wire.ParticipantID) bool {
	return (f.From == 0 || f.From == from) && (f.To == 0 || f.To == to)
}

// EventKind discriminates scheduled node events.
type EventKind uint8

// Node event kinds.
const (
	// EventCrash silences a node: it stops sending, receiving and firing
	// timers.
	EventCrash EventKind = iota + 1
	// EventRestart revives a crashed node with a fresh engine; it rejoins
	// through the membership protocol.
	EventRestart
	// EventPartition moves a node into partition group Group; traffic
	// flows only within a group. All nodes start in group 0.
	EventPartition
	// EventHeal reconnects all partitions (every node back to group 0).
	EventHeal
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventCrash:
		return "crash"
	case EventRestart:
		return "restart"
	case EventPartition:
		return "partition"
	case EventHeal:
		return "heal"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// NodeEvent is one scheduled fault event.
type NodeEvent struct {
	// At is the event time, relative to the start of the run.
	At time.Duration
	// Kind is the event type.
	Kind EventKind
	// Node is the affected participant (unused for EventHeal).
	Node wire.ParticipantID
	// Group is the partition group for EventPartition.
	Group int
}

// Plan is one deterministic fault program.
type Plan struct {
	// Seed drives every probabilistic decision of the plan's Injector.
	Seed int64
	// Links are the probabilistic link faults.
	Links []LinkFault
	// Events are the scheduled node events, in any order.
	Events []NodeEvent
}

// NodeEvents returns the plan's events sorted by time (stable, so events
// at the same instant keep their declaration order).
func (p *Plan) NodeEvents() []NodeEvent {
	out := make([]NodeEvent, len(p.Events))
	copy(out, p.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// String summarizes the plan for logs.
func (p *Plan) String() string {
	return fmt.Sprintf("plan(seed=%d links=%d events=%d)", p.Seed, len(p.Links), len(p.Events))
}

// Verdict is the injector's decision about one packet transmission.
type Verdict struct {
	// Drop discards the packet.
	Drop bool
	// Dup delivers the packet twice.
	Dup bool
	// Delay adds extra delivery latency, reordering the packet behind
	// later traffic.
	Delay time.Duration
}

// Injector evaluates a plan at runtime. It is not safe for concurrent use;
// callers that share one injector across goroutines (the memnet hub) must
// serialize Decide calls.
type Injector struct {
	plan   *Plan
	events []NodeEvent
	cursor int
	groups map[wire.ParticipantID]int
	links  map[linkKey]*rand.Rand
}

type linkKey struct {
	from, to wire.ParticipantID
}

// Injector builds a runtime evaluator for the plan. Each call returns a
// fresh injector replaying the identical decision streams.
func (p *Plan) Injector() *Injector {
	return &Injector{
		plan:   p,
		events: p.NodeEvents(),
		groups: make(map[wire.ParticipantID]int),
		links:  make(map[linkKey]*rand.Rand),
	}
}

// advance applies partition/heal events due at or before now. Crash and
// restart events are the substrate's job (the injector cannot revive an
// engine); it only tracks connectivity.
func (in *Injector) advance(now time.Duration) {
	for in.cursor < len(in.events) && in.events[in.cursor].At <= now {
		ev := in.events[in.cursor]
		in.cursor++
		switch ev.Kind {
		case EventPartition:
			in.groups[ev.Node] = ev.Group
		case EventHeal:
			in.groups = make(map[wire.ParticipantID]int)
		}
	}
}

// Connected reports whether traffic flows from a to b at time now, per the
// plan's partition events.
func (in *Injector) Connected(now time.Duration, a, b wire.ParticipantID) bool {
	in.advance(now)
	return in.groups[a] == in.groups[b]
}

// linkRng returns the per-link decision stream. Streams are keyed by the
// (from, to) pair only, so a link's fault sequence depends on the packets
// sent over that link, never on interleaving with other links.
func (in *Injector) linkRng(from, to wire.ParticipantID) *rand.Rand {
	key := linkKey{from, to}
	r, ok := in.links[key]
	if !ok {
		r = rand.New(rand.NewSource(int64(splitmix64(uint64(in.plan.Seed) ^
			uint64(from)<<32 ^ uint64(to)))))
		in.links[key] = r
	}
	return r
}

// Decide returns the fault verdict for one packet sent from from to to at
// time now. Self-sends (from == to) are never faulted. Cross-partition
// packets are dropped.
func (in *Injector) Decide(now time.Duration, from, to wire.ParticipantID, kind wire.Kind) Verdict {
	if from == to {
		return Verdict{}
	}
	in.advance(now)
	if in.groups[from] != in.groups[to] {
		return Verdict{Drop: true}
	}
	var v Verdict
	for i := range in.plan.Links {
		f := &in.plan.Links[i]
		if !f.active(now) || !f.matchesLink(from, to) || !f.Kinds.matches(kind) {
			continue
		}
		r := in.linkRng(from, to)
		if f.Loss > 0 && r.Float64() < f.Loss {
			v.Drop = true
		}
		if f.Dup > 0 && r.Float64() < f.Dup {
			v.Dup = true
		}
		if f.DelayProb > 0 && r.Float64() < f.DelayProb {
			v.Delay += f.Delay
		}
	}
	if v.Drop {
		return Verdict{Drop: true}
	}
	return v
}

// splitmix64 mixes a seed into a well-distributed 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
