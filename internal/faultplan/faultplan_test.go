package faultplan

import (
	"reflect"
	"testing"
	"time"

	"accelring/internal/wire"
)

func TestInjectorDeterministic(t *testing.T) {
	p := Plan{Seed: 42, Links: []LinkFault{
		{Loss: 0.3, Dup: 0.1, DelayProb: 0.2, Delay: time.Millisecond},
	}}
	run := func() []Verdict {
		in := p.Injector()
		var out []Verdict
		for i := 0; i < 200; i++ {
			now := time.Duration(i) * time.Millisecond
			out = append(out, in.Decide(now, 1, 2, wire.KindData))
			out = append(out, in.Decide(now, 2, 1, wire.KindToken))
		}
		return out
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("identical call sequences produced different verdicts")
	}
}

func TestPerLinkStreamsIndependent(t *testing.T) {
	// Interleaving traffic on another link must not perturb a link's fault
	// sequence: decisions are drawn from per-link streams.
	p := Plan{Seed: 7, Links: []LinkFault{{Loss: 0.5}}}
	alone := p.Injector()
	mixed := p.Injector()
	var a, b []Verdict
	for i := 0; i < 100; i++ {
		now := time.Duration(i) * time.Millisecond
		a = append(a, alone.Decide(now, 1, 2, wire.KindData))
		mixed.Decide(now, 3, 4, wire.KindData) // extra traffic elsewhere
		b = append(b, mixed.Decide(now, 1, 2, wire.KindData))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("traffic on link 3→4 perturbed the 1→2 fault sequence")
	}
}

func TestWindowsAndMatching(t *testing.T) {
	p := Plan{Seed: 1, Links: []LinkFault{
		{From: 1, To: 2, Kinds: MaskToken, Start: time.Second, End: 2 * time.Second, Loss: 1},
	}}
	in := p.Injector()
	if in.Decide(500*time.Millisecond, 1, 2, wire.KindToken).Drop {
		t.Fatal("fault fired before its window")
	}
	if !in.Decide(1500*time.Millisecond, 1, 2, wire.KindToken).Drop {
		t.Fatal("fault inactive inside its window")
	}
	if in.Decide(1500*time.Millisecond, 1, 2, wire.KindData).Drop {
		t.Fatal("token-only fault dropped a data packet")
	}
	if in.Decide(1500*time.Millisecond, 2, 1, wire.KindToken).Drop {
		t.Fatal("1→2 fault dropped a 2→1 packet")
	}
	if in.Decide(2500*time.Millisecond, 1, 2, wire.KindToken).Drop {
		t.Fatal("fault fired after its window")
	}
}

func TestPartitionEvents(t *testing.T) {
	p := Plan{Seed: 1, Events: []NodeEvent{
		{At: time.Second, Kind: EventPartition, Node: 3, Group: 1},
		{At: 2 * time.Second, Kind: EventHeal},
	}}
	in := p.Injector()
	if in.Decide(0, 1, 3, wire.KindData).Drop {
		t.Fatal("dropped before partition")
	}
	if !in.Decide(1500*time.Millisecond, 1, 3, wire.KindData).Drop {
		t.Fatal("cross-partition packet not dropped")
	}
	if in.Decide(1500*time.Millisecond, 1, 2, wire.KindData).Drop {
		t.Fatal("same-group packet dropped")
	}
	if in.Decide(2500*time.Millisecond, 1, 3, wire.KindData).Drop {
		t.Fatal("dropped after heal")
	}
}

func TestSelfSendsNeverFaulted(t *testing.T) {
	p := Plan{Seed: 1, Links: []LinkFault{{Loss: 1}}}
	in := p.Injector()
	if v := in.Decide(0, 2, 2, wire.KindToken); v.Drop || v.Dup || v.Delay != 0 {
		t.Fatalf("self-send faulted: %+v", v)
	}
}

func TestGenerateDeterministicAndBounded(t *testing.T) {
	const dur = time.Second
	a := Generate(99, 5, dur, ClassAll)
	b := Generate(99, 5, dur, ClassAll)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different plans")
	}
	for _, f := range a.Links {
		if f.End == 0 || f.End > dur {
			t.Fatalf("link fault window %v..%v not bounded by %v", f.Start, f.End, dur)
		}
	}
	crashed := map[wire.ParticipantID]bool{}
	for _, ev := range a.NodeEvents() {
		if ev.At >= dur {
			t.Fatalf("event %v at %v past plan end %v", ev.Kind, ev.At, dur)
		}
		switch ev.Kind {
		case EventCrash:
			crashed[ev.Node] = true
		case EventRestart:
			if !crashed[ev.Node] {
				t.Fatalf("restart of %v before its crash", ev.Node)
			}
			delete(crashed, ev.Node)
		}
	}
	if len(crashed) != 0 {
		t.Fatalf("nodes left crashed at plan end: %v", crashed)
	}
	// Different seeds should explore different plans (probabilistic, but
	// 10 identical consecutive plans would mean the seed is ignored).
	distinct := false
	for seed := int64(0); seed < 10; seed++ {
		if !reflect.DeepEqual(Generate(seed, 5, dur, ClassAll), a) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("generator ignores its seed")
	}
}

func TestGenerateDegenerateInputs(t *testing.T) {
	// Degenerate inputs must yield empty/reduced plans, never panic.
	if p := Generate(1, 0, time.Second, ClassAll); len(p.Links) != 0 || len(p.Events) != 0 {
		t.Fatalf("zero nodes produced a non-empty plan: %v", &p)
	}
	if p := Generate(1, 5, 0, ClassAll); len(p.Links) != 0 || len(p.Events) != 0 {
		t.Fatalf("zero duration produced a non-empty plan: %v", &p)
	}
	for seed := int64(1); seed <= 20; seed++ {
		p := Generate(seed, 1, time.Second, ClassAll)
		for _, ev := range p.Events {
			if ev.Kind == EventPartition {
				t.Fatalf("seed %d partitioned a single-node cluster", seed)
			}
		}
	}
}
