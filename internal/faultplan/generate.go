package faultplan

import (
	"math/rand"
	"time"

	"accelring/internal/wire"
)

// Class selects fault classes for the campaign generator.
type Class uint8

// Fault classes.
const (
	ClassLoss Class = 1 << iota
	ClassDup
	ClassDelay
	ClassPartition
	ClassCrash

	// ClassLink is every link-level fault class.
	ClassLink = ClassLoss | ClassDup | ClassDelay
	// ClassAll is every fault class.
	ClassAll = ClassLink | ClassPartition | ClassCrash
)

// Generate draws a random fault plan from the seed: a campaign of link
// fault bursts and node events over [0, dur), for a cluster of nodes with
// IDs 1..nodes. Every fault ends before dur — loss windows close,
// partitions heal, crashed nodes restart — so a run that continues past
// dur converges and can be checked for conformance. The same seed always
// yields the same plan. Degenerate inputs (nodes < 1, dur too short to
// hold a fault window, or a partition of a single node) yield an empty or
// reduced plan rather than panicking.
func Generate(seed int64, nodes int, dur time.Duration, classes Class) Plan {
	p := Plan{Seed: seed}
	if nodes < 1 || dur < 10*time.Nanosecond {
		return p
	}
	if nodes < 2 {
		classes &^= ClassPartition
	}
	rng := rand.New(rand.NewSource(seed))
	ids := make([]wire.ParticipantID, nodes)
	for i := range ids {
		ids[i] = wire.ParticipantID(i + 1)
	}
	window := func() (time.Duration, time.Duration) {
		start := time.Duration(rng.Int63n(int64(dur / 2)))
		end := start + time.Duration(rng.Int63n(int64(dur/2))) + dur/10
		if end > dur {
			end = dur
		}
		return start, end
	}

	if classes&ClassLoss != 0 {
		// One global background loss window plus 0-2 heavier bursts on
		// single links (token loss on a specific hop stresses
		// retransmission and membership timeouts).
		start, end := window()
		p.Links = append(p.Links, LinkFault{Start: start, End: end,
			Loss: 0.01 + rng.Float64()*0.04})
		for i, n := 0, rng.Intn(3); i < n; i++ {
			start, end := window()
			p.Links = append(p.Links, LinkFault{
				From:  ids[rng.Intn(nodes)],
				Start: start, End: end,
				Loss: 0.05 + rng.Float64()*0.15,
			})
		}
	}
	if classes&ClassDup != 0 && rng.Intn(2) == 0 {
		start, end := window()
		p.Links = append(p.Links, LinkFault{Start: start, End: end,
			Dup: 0.02 + rng.Float64()*0.08})
	}
	if classes&ClassDelay != 0 && rng.Intn(2) == 0 {
		start, end := window()
		p.Links = append(p.Links, LinkFault{Start: start, End: end,
			DelayProb: 0.05 + rng.Float64()*0.15,
			Delay:     time.Duration(rng.Int63n(int64(2 * time.Millisecond)))})
	}
	if classes&ClassPartition != 0 && rng.Intn(2) == 0 {
		// Split a random minority into group 1 for a stretch, then heal.
		at := time.Duration(rng.Int63n(int64(dur / 2)))
		heal := at + dur/4 + time.Duration(rng.Int63n(int64(dur/4)))
		if heal >= dur {
			heal = dur - 1
		}
		moved := 1 + rng.Intn(nodes/2)
		perm := rng.Perm(nodes)
		for i := 0; i < moved; i++ {
			p.Events = append(p.Events, NodeEvent{At: at, Kind: EventPartition,
				Node: ids[perm[i]], Group: 1})
		}
		p.Events = append(p.Events, NodeEvent{At: heal, Kind: EventHeal})
	}
	if classes&ClassCrash != 0 && rng.Intn(2) == 0 {
		// Crash one node and restart it later; keeping a majority of the
		// cluster alive is not required (EVS tolerates any partition), but
		// a single crash keeps campaigns short.
		at := time.Duration(rng.Int63n(int64(dur / 2)))
		back := at + dur/4 + time.Duration(rng.Int63n(int64(dur/4)))
		if back >= dur {
			back = dur - 1
		}
		node := ids[rng.Intn(nodes)]
		p.Events = append(p.Events,
			NodeEvent{At: at, Kind: EventCrash, Node: node},
			NodeEvent{At: back, Kind: EventRestart, Node: node})
	}
	return p
}
