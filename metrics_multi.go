package accelring

import (
	"accelring/internal/metrics"
)

// Per-ring observability. Every ring owns a private metrics registry (its
// node's engine counters, runtime counters and histograms), so one ring's
// traffic can never contaminate another's numbers; the merged view is
// computed at snapshot time by summation. The one deliberately shared
// registry is the process-wide packet buffer pool — it is global by
// design, and the merge reports it once instead of once per ring, which
// would multiply-count every recycle.

// RingMetrics is one ring's labeled metrics snapshot.
type RingMetrics struct {
	// Ring is the shard index.
	Ring int `json:"ring"`
	MetricsSnapshot
}

// MultiMetricsSnapshot is the full observability snapshot of a multi-ring
// node: the per-ring breakdown, the merged view, and the merge layer's own
// counters.
type MultiMetricsSnapshot struct {
	Rings  []RingMetrics   `json:"rings"`
	Merged MetricsSnapshot `json:"merged"`
	Router RouterSnapshot  `json:"router"`
	// ShardChecks and ShardStalls are the cross-ring watchdog's counters:
	// relative-progress checks, and rings caught frozen while a sibling
	// ring kept rotating its token. Zero when the watchdog is disabled.
	ShardChecks uint64 `json:"shard_checks,omitempty"`
	ShardStalls uint64 `json:"shard_stalls,omitempty"`
}

// Metrics returns the per-ring breakdown plus the merged view. Each ring's
// snapshot is fetched synchronously from that ring's protocol loop.
func (mn *MultiNode) Metrics() (MultiMetricsSnapshot, error) {
	out := MultiMetricsSnapshot{
		Rings:       make([]RingMetrics, 0, len(mn.nodes)),
		Router:      mn.router.Snapshot(),
		ShardChecks: mn.shardChecks.Load(),
		ShardStalls: mn.shardStalls.Load(),
	}
	snaps := make([]MetricsSnapshot, 0, len(mn.nodes))
	for i, n := range mn.nodes {
		s, err := n.Metrics()
		if err != nil {
			return MultiMetricsSnapshot{}, err
		}
		out.Rings = append(out.Rings, RingMetrics{Ring: i, MetricsSnapshot: s})
		snaps = append(snaps, s)
	}
	out.Merged = MergeMetricsSnapshots(snaps...)
	return out, nil
}

// MergeMetricsSnapshots sums per-ring node snapshots into one aggregate
// view. Counters add; histograms merge bucket-wise; the AccelWindow gauge
// reports the largest ring's window; transport counters add across rings
// (each ring has its own sockets); the buffer pool — process-global, shared
// by every ring by design — is reported once, not summed. The per-ring
// error rings are not concatenated into the merged view (counts still add);
// read them from the per-ring snapshots, where the ring label gives them
// meaning.
func MergeMetricsSnapshots(snaps ...MetricsSnapshot) MetricsSnapshot {
	var out MetricsSnapshot
	rot := make([]HistogramSnapshot, 0, len(snaps))
	hnd := make([]HistogramSnapshot, 0, len(snaps))
	anyTransport := false
	var tr TransportSnapshot
	for i, s := range snaps {
		e, m := &out.Engine, s.Engine
		e.TokensProcessed += m.TokensProcessed
		e.TokensDuplicate += m.TokensDuplicate
		e.TokenRetransmits += m.TokenRetransmits
		e.MsgsSent += m.MsgsSent
		e.MsgsPostToken += m.MsgsPostToken
		e.MsgsRetransmitted += m.MsgsRetransmitted
		e.MsgsReceived += m.MsgsReceived
		e.MsgsDuplicate += m.MsgsDuplicate
		e.RTRRequested += m.RTRRequested
		e.RTRDeferredRounds += m.RTRDeferredRounds
		e.FlowThrottledRounds += m.FlowThrottledRounds
		e.AccelFlushes += m.AccelFlushes
		e.Delivered += m.Delivered
		e.PayloadsPacked += m.PayloadsPacked
		e.SafeDelivered += m.SafeDelivered
		e.Discarded += m.Discarded
		e.MembershipChanges += m.MembershipChanges
		if m.AccelWindow > e.AccelWindow {
			e.AccelWindow = m.AccelWindow
		}
		e.WindowDecreases += m.WindowDecreases
		e.WindowIncreases += m.WindowIncreases

		r, n := &out.Runtime, s.Runtime
		r.PacketsData += n.PacketsData
		r.PacketsToken += n.PacketsToken
		r.PacketsJoin += n.PacketsJoin
		r.PacketsCommit += n.PacketsCommit
		r.DecodeFailures += n.DecodeFailures
		r.EncodeFailures += n.EncodeFailures
		r.SendFailures += n.SendFailures
		r.TimerFires += n.TimerFires
		r.TimerStaleDrops += n.TimerStaleDrops
		r.TimerCancels += n.TimerCancels
		r.Submits += n.Submits
		r.SubmitErrors += n.SubmitErrors
		r.EventsDelivered += n.EventsDelivered
		r.WatchdogChecks += n.WatchdogChecks
		r.WatchdogStalls += n.WatchdogStalls
		r.EventQueueLen += n.EventQueueLen
		r.DataQueueLen += n.DataQueueLen
		r.TokenQueueLen += n.TokenQueueLen
		rot = append(rot, n.TokenRotation)
		hnd = append(hnd, n.TokenHandle)

		if s.Transport != nil {
			anyTransport = true
			tr.DatagramsIn += s.Transport.DatagramsIn
			tr.DatagramsOut += s.Transport.DatagramsOut
			tr.RecvQueueDrops += s.Transport.RecvQueueDrops
			tr.FanoutSends += s.Transport.FanoutSends
			tr.SelfFiltered += s.Transport.SelfFiltered
		}
		out.ErrorCount += s.ErrorCount
		if i == 0 {
			out.BufferPool = s.BufferPool
		}
	}
	out.Runtime.TokenRotation = metrics.MergeHistograms(rot...)
	out.Runtime.TokenHandle = metrics.MergeHistograms(hnd...)
	if anyTransport {
		out.Transport = &tr
	}
	return out
}
