package accelring

// Benchmarks regenerating the paper's evaluation figures on the
// discrete-event simulator (one benchmark per figure — see DESIGN.md §4
// for the experiment index), plus micro-benchmarks of the protocol's hot
// paths. Run them all with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark runs its full sweep at the quick scale and reports
// headline metrics (maximum stable throughput per implementation and the
// accelerated-vs-original ratios); cmd/ringbench prints the full tables.
//
// NOTE: the quick scale's short measurement windows overstate maxima near
// saturation (a briefly-keeping-up ring counts as stable), which can
// compress the reported speedups — e.g. on the 1GbE figures both protocols
// may touch the grid top. EXPERIMENTS.md compares the paper against the
// full-scale sweeps (cmd/ringbench without -quick), which do not have this
// artifact.

import (
	"testing"
	"time"

	"accelring/internal/bench"
	"accelring/internal/core"
	"accelring/internal/msgbuf"
	"accelring/internal/wire"
)

// runFigure executes one figure's sweep and reports summary metrics.
func runFigure(b *testing.B, id string, report func(b *testing.B, pts []bench.Point)) {
	b.Helper()
	fig, ok := bench.FigureByID(id)
	if !ok {
		b.Fatalf("unknown figure %q", id)
	}
	for i := 0; i < b.N; i++ {
		pts, err := bench.RunFigure(fig, bench.QuickScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			report(b, pts)
		}
	}
}

// reportProtocolFigure reports max stable throughput per series and the
// accelerated/original throughput ratio per implementation.
func reportProtocolFigure(b *testing.B, pts []bench.Point) {
	for _, impl := range []string{"library", "daemon", "spread"} {
		orig := bench.MaxStableMbps(pts, impl+"/original")
		accel := bench.MaxStableMbps(pts, impl+"/accelerated")
		b.ReportMetric(orig, impl+"-orig-mbps")
		b.ReportMetric(accel, impl+"-accel-mbps")
		if orig > 0 {
			b.ReportMetric(accel/orig, impl+"-speedup")
		}
	}
}

// reportPayloadFigure reports max stable throughput per payload size.
func reportPayloadFigure(b *testing.B, pts []bench.Point) {
	for _, impl := range []string{"library", "daemon", "spread"} {
		small := bench.MaxStableMbps(pts, impl+"/1350B")
		large := bench.MaxStableMbps(pts, impl+"/8850B")
		b.ReportMetric(small, impl+"-1350B-mbps")
		b.ReportMetric(large, impl+"-8850B-mbps")
		if small > 0 {
			b.ReportMetric(large/small, impl+"-gain")
		}
	}
}

// BenchmarkFigure1 regenerates Fig. 1: Agreed latency vs. throughput, 1GbE.
func BenchmarkFigure1(b *testing.B) {
	runFigure(b, "figure1", reportProtocolFigure)
}

// BenchmarkFigure2 regenerates Fig. 2: Safe latency vs. throughput, 1GbE.
func BenchmarkFigure2(b *testing.B) {
	runFigure(b, "figure2", reportProtocolFigure)
}

// BenchmarkFigure3 regenerates Fig. 3: Agreed latency vs. throughput, 10GbE.
func BenchmarkFigure3(b *testing.B) {
	runFigure(b, "figure3", reportProtocolFigure)
}

// BenchmarkFigure4 regenerates Fig. 4: 1350B vs 8850B payloads, Agreed, 10GbE.
func BenchmarkFigure4(b *testing.B) {
	runFigure(b, "figure4", reportPayloadFigure)
}

// BenchmarkFigure5 regenerates Fig. 5: Safe latency vs. throughput, 10GbE.
func BenchmarkFigure5(b *testing.B) {
	runFigure(b, "figure5", reportProtocolFigure)
}

// BenchmarkFigure6 regenerates Fig. 6: 1350B vs 8850B payloads, Safe, 10GbE.
func BenchmarkFigure6(b *testing.B) {
	runFigure(b, "figure6", reportPayloadFigure)
}

// BenchmarkFigure7 regenerates Fig. 7: Safe latency at low throughput,
// 10GbE — the regime where the original protocol beats the accelerated one
// until the crossover.
func BenchmarkFigure7(b *testing.B) {
	runFigure(b, "figure7", func(b *testing.B, pts []bench.Point) {
		lowO, okO := bench.LatencyAt(pts, "spread/original", 100)
		lowA, okA := bench.LatencyAt(pts, "spread/accelerated", 100)
		highO, okHO := bench.LatencyAt(pts, "spread/original", 1000)
		highA, okHA := bench.LatencyAt(pts, "spread/accelerated", 1000)
		if okO && okA {
			b.ReportMetric(float64(lowO)/float64(time.Microsecond), "orig-100mbps-us")
			b.ReportMetric(float64(lowA)/float64(time.Microsecond), "accel-100mbps-us")
		}
		if okHO && okHA {
			b.ReportMetric(float64(highO)/float64(time.Microsecond), "orig-1000mbps-us")
			b.ReportMetric(float64(highA)/float64(time.Microsecond), "accel-1000mbps-us")
		}
	})
}

// --- Ablation benchmarks: the design choices DESIGN.md calls out.

func runAblation(b *testing.B, id string, report func(*testing.B, []bench.Point)) {
	b.Helper()
	a, ok := bench.AblationByID(id)
	if !ok {
		b.Fatalf("unknown ablation %q", id)
	}
	for i := 0; i < b.N; i++ {
		pts, err := a.Run(bench.QuickScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			report(b, pts)
		}
	}
}

// BenchmarkAblationAccelWindow sweeps the accelerated window at fixed load:
// window 0 is the original protocol's sending pattern; the latency drop as
// the window opens is the protocol's whole point.
func BenchmarkAblationAccelWindow(b *testing.B) {
	runAblation(b, "accel-window", func(b *testing.B, pts []bench.Point) {
		for _, p := range pts {
			b.ReportMetric(float64(p.AvgLatency)/float64(time.Microsecond), p.Series+"-us")
		}
	})
}

// BenchmarkAblationPriorityMethod compares the aggressive and conservative
// token-priority methods (Section III-C).
func BenchmarkAblationPriorityMethod(b *testing.B) {
	runAblation(b, "priority-method", func(b *testing.B, pts []bench.Point) {
		for _, p := range pts {
			if p.OfferedMbps == 2000 {
				b.ReportMetric(float64(p.AvgLatency)/float64(time.Microsecond), p.Series+"-2g-us")
			}
		}
	})
}

// BenchmarkAblationRingSize scales the ring from 2 to 24 participants.
func BenchmarkAblationRingSize(b *testing.B) {
	runAblation(b, "ring-size", func(b *testing.B, pts []bench.Point) {
		for _, p := range pts {
			b.ReportMetric(float64(p.AvgLatency)/float64(time.Microsecond), p.Series+"-us")
		}
	})
}

// --- Micro-benchmarks: protocol hot paths.

func BenchmarkWireEncodeData(b *testing.B) {
	m := &wire.DataMessage{
		RingID:  wire.RingID{Rep: 1, Seq: 4},
		Seq:     12345,
		PID:     3,
		Round:   99,
		Service: wire.ServiceAgreed,
		Payload: make([]byte, 1350),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeData(b *testing.B) {
	m := &wire.DataMessage{
		RingID:  wire.RingID{Rep: 1, Seq: 4},
		Seq:     12345,
		PID:     3,
		Round:   99,
		Service: wire.ServiceAgreed,
		Payload: make([]byte, 1350),
	}
	pkt, err := m.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeData(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireTokenRoundtrip(b *testing.B) {
	tok := &wire.Token{
		RingID: wire.RingID{Rep: 1, Seq: 4}, TokenSeq: 77, Round: 400,
		Seq: 100000, ARU: 99990, FCC: 120, RTR: []wire.Seq{99991, 99995},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := tok.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.DecodeToken(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireAppendData is the steady-state encode path as the runtime
// loop actually runs it: appending into a reused scratch buffer. Expected
// to report 0 allocs/op; the allocation gates in internal/wire enforce it.
func BenchmarkWireAppendData(b *testing.B) {
	m := &wire.DataMessage{
		RingID:  wire.RingID{Rep: 1, Seq: 4},
		Seq:     12345,
		PID:     3,
		Round:   99,
		Service: wire.ServiceAgreed,
		Payload: make([]byte, 1350),
	}
	scratch := make([]byte, 0, m.EncodedSize())
	b.SetBytes(int64(m.EncodedSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := wire.AppendData(scratch[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		scratch = pkt[:0]
	}
}

// BenchmarkWireAppendToken is the token forward path with a reused scratch.
func BenchmarkWireAppendToken(b *testing.B) {
	tok := &wire.Token{
		RingID: wire.RingID{Rep: 1, Seq: 4}, TokenSeq: 77, Round: 400,
		Seq: 100000, ARU: 99990, FCC: 120, RTR: []wire.Seq{99991, 99995},
	}
	scratch := make([]byte, 0, tok.EncodedSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := wire.AppendToken(scratch[:0], tok)
		if err != nil {
			b.Fatal(err)
		}
		scratch = pkt[:0]
	}
}

// BenchmarkWireDecodeInto is the steady-state decode pair with reused
// destinations: the data payload aliases the packet, the token reuses its
// RTR capacity.
func BenchmarkWireDecodeInto(b *testing.B) {
	dataPkt, err := (&wire.DataMessage{
		RingID: wire.RingID{Rep: 1, Seq: 4}, Seq: 12345, PID: 3, Round: 99,
		Service: wire.ServiceAgreed, Payload: make([]byte, 1350),
	}).Encode()
	if err != nil {
		b.Fatal(err)
	}
	tokPkt, err := (&wire.Token{
		RingID: wire.RingID{Rep: 1, Seq: 4}, TokenSeq: 77, Round: 400,
		Seq: 100000, ARU: 99990, FCC: 120, RTR: []wire.Seq{99991, 99995},
	}).Encode()
	if err != nil {
		b.Fatal(err)
	}
	var m wire.DataMessage
	var tok wire.Token
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.DecodeDataInto(&m, dataPkt); err != nil {
			b.Fatal(err)
		}
		if err := wire.DecodeTokenInto(&tok, tokPkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTokenRound measures one full engine token round: 8 new
// messages sequenced, the token updated and forwarded, deliveries drained.
func BenchmarkEngineTokenRound(b *testing.B) {
	eng, err := core.New(core.Config{MyID: 2, Protocol: core.ProtocolAcceleratedRing})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.StartWithRing([]wire.ParticipantID{1, 2, 3}); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1350)
	ringID := eng.Ring().ID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			if err := eng.Submit(payload, wire.ServiceAgreed); err != nil {
				b.Fatal(err)
			}
		}
		seq := wire.Seq(i * 8)
		tok := &wire.Token{
			RingID: ringID, TokenSeq: uint64(i + 1), Round: wire.Round(i),
			Seq: seq, ARU: seq,
		}
		if actions := eng.HandleToken(tok); len(actions) == 0 {
			b.Fatal("token produced no actions")
		}
	}
}

// BenchmarkEngineDataHandling measures the receive path: insert + deliver.
func BenchmarkEngineDataHandling(b *testing.B) {
	eng, err := core.New(core.Config{MyID: 2, Protocol: core.ProtocolAcceleratedRing})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.StartWithRing([]wire.ParticipantID{1, 2, 3}); err != nil {
		b.Fatal(err)
	}
	ringID := eng.Ring().ID
	payload := make([]byte, 1350)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &wire.DataMessage{
			RingID: ringID, Seq: wire.Seq(i + 1), PID: 1, Round: 1,
			Service: wire.ServiceAgreed, Payload: payload,
		}
		eng.HandleData(m)
	}
}

func BenchmarkMsgbufInsertDeliver(b *testing.B) {
	buf := msgbuf.New(0)
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &wire.DataMessage{Seq: wire.Seq(i + 1), PID: 1, Service: wire.ServiceAgreed, Payload: payload}
		buf.Insert(m)
		if d := buf.NextDeliverable(0); d != nil {
			buf.Advance(d.Seq)
		}
		if i%1024 == 0 {
			buf.DiscardStable(wire.Seq(i))
		}
	}
}

// BenchmarkPackingSmallMessages measures Spread-style message packing on
// real small messages over the in-memory transport: 64-byte payloads with
// packing off vs packed into 1350-byte protocol packets.
func BenchmarkPackingSmallMessages(b *testing.B) {
	for _, tc := range []struct {
		name      string
		threshold int
	}{{"unpacked", 0}, {"packed1350", 1350}} {
		b.Run(tc.name, func(b *testing.B) {
			network := NewMemoryNetwork(1)
			network.SetLatency(20 * time.Microsecond)
			members := []ParticipantID{1, 2, 3}
			nodes := make([]*Node, 0, 3)
			for _, id := range members {
				n, err := Start(Options{
					ID: id, Transport: network.Endpoint(id), Members: members,
					PackThreshold: tc.threshold,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer n.Close()
				nodes = append(nodes, n)
			}
			payload := make([]byte, 64)
			b.SetBytes(64)
			b.ReportAllocs()
			b.ResetTimer()
			done := make(chan struct{})
			for i, node := range nodes {
				events := node.Events()
				last := i == len(nodes)-1
				go func() {
					got := 0
					for ev := range events {
						if _, ok := ev.(Message); ok {
							got++
							if got == b.N {
								if last {
									close(done)
								}
								return
							}
						}
					}
				}()
			}
			for i := 0; i < b.N; i++ {
				for {
					if err := nodes[0].Submit(payload, Agreed); err == nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
			}
			<-done
		})
	}
}

// BenchmarkEndToEndMemnet measures real (wall-clock) end-to-end ordered
// delivery over the in-memory transport: 3 nodes, agreed delivery.
func BenchmarkEndToEndMemnet(b *testing.B) {
	network := NewMemoryNetwork(1)
	network.SetLatency(20 * time.Microsecond)
	members := []ParticipantID{1, 2, 3}
	nodes := make([]*Node, 0, 3)
	for _, id := range members {
		n, err := Start(Options{ID: id, Transport: network.Endpoint(id), Members: members})
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}
	payload := make([]byte, 1350)
	b.SetBytes(1350)
	b.ReportAllocs()
	b.ResetTimer()
	// Every node must drain its events or the protocol loop blocks.
	done := make(chan struct{})
	for i, node := range nodes {
		events := node.Events()
		last := i == len(nodes)-1
		go func() {
			got := 0
			for ev := range events {
				if _, ok := ev.(Message); ok {
					got++
					if got == b.N {
						if last {
							close(done)
						}
						return
					}
				}
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		for {
			if err := nodes[0].Submit(payload, Agreed); err == nil {
				break
			}
			time.Sleep(time.Millisecond) // backlog full: let the ring drain
		}
	}
	<-done
}
