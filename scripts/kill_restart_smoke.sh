#!/usr/bin/env bash
# Kill/restart recovery smoke: a single-node ringd is SIGKILLed and
# restarted under a live ringload; ringload runs with -require-recovery,
# so it exits non-zero unless its managed connection survived the outage
# (>= 1 reconnect) AND delivered traffic afterwards. CI runs this to keep
# the out-of-process recovery path honest; the in-process equivalent (and
# the stronger no-dup/no-silent-gap assertions) is
# internal/daemon.TestChaosKillRestartSoak.
set -euo pipefail

DIR=$(mktemp -d)
SOCK="$DIR/ringd.sock"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/ringd" ./cmd/ringd
go build -o "$DIR/ringload" ./cmd/ringload

start_ringd() {
    "$DIR/ringd" -id 1 -peers 1=127.0.0.1 -members 1 -mcast "" \
        -socket "$SOCK" -drain-timeout 2s &
    RINGD_PID=$!
}

start_ringd
# Wait for the socket to appear.
for _ in $(seq 1 50); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "ringd never created $SOCK"; exit 1; }

"$DIR/ringload" -socket "$SOCK" -name probe -rate 200 -size 64 \
    -duration 8s -connect-wait 5s -reconnect -require-recovery &
LOAD_PID=$!

# Mid-run: kill the daemon abruptly (no drain), then restart it on the
# same socket, exactly as a supervisor would.
sleep 2
kill -9 "$RINGD_PID"
rm -f "$SOCK"
sleep 1
start_ringd

wait "$LOAD_PID"
echo "kill/restart smoke: ringload recovered"
